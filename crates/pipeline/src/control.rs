//! The TDRC control plane: wire-serializable request/response frames for
//! the audit daemon.
//!
//! [`ControlFrame`] is the message set a client and an
//! [`crate::AuditService`] daemon exchange: submit a TDRB batch, stream
//! back per-session verdicts, finish with a fleet summary (or an in-band
//! error), shut down. Frames use the same conventions as the TDRL/TDRB
//! formats — little-endian fixed-width integers, LEB128 varints, a `u32`
//! length prefix, and a CRC-32 trailer over everything after the magic —
//! so one set of framing helpers (`replay::stream`, `replay::codec::wire`)
//! serves all three formats. The format is specified normatively in
//! `docs/FORMATS.md` (§ "TDRC control frames"), with a worked example
//! pinned byte-for-byte by `formats_md_control_frame_bytes_are_pinned`
//! below.
//!
//! Scores travel as the 8 raw bytes of their IEEE-754 bit pattern, so a
//! decoded verdict is **bit-identical** to the one the service produced —
//! the control plane can never perturb a fleet report.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};

use jbc::ReferenceId;
use replay::codec::{wire, CodecError};
use replay::stream::{read_full, read_length_prefix, StreamError};

use crate::obs::{HistogramSnapshot, MetricsSnapshot};
use crate::verdict::{AuditVerdict, DetectorStats, FleetSummary, ScoreHistogram, EDGES};

/// Magic bytes opening every control frame's payload.
pub const CONTROL_MAGIC: [u8; 4] = *b"TDRC";

/// Current control-plane version.
pub const CONTROL_VERSION: u16 = 1;

/// Cap on a single control frame's declared length (bounded lookahead,
/// like the TDRL frame bound): generous, because a `SubmitBatch` frame
/// embeds a whole TDRB batch.
pub const DEFAULT_MAX_CONTROL_FRAME: usize = 256 << 20;

/// Control-plane protocol failure (transport- or frame-level; batch
/// *content* failures travel in-band as [`ControlFrame::Error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// Input ended inside a frame (or its length prefix).
    Truncated,
    /// The payload does not open with `"TDRC"`.
    BadMagic,
    /// Newer or unknown control-plane version.
    UnsupportedVersion(u16),
    /// Nonzero flags in a version-1 frame.
    UnsupportedFlags(u16),
    /// The CRC-32 trailer does not match the payload.
    BadChecksum {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The kind byte names no known frame.
    UnknownKind(u8),
    /// A frame declared a length above the configured bound.
    FrameTooLarge {
        /// The declared frame length.
        len: usize,
        /// The configured maximum.
        max: usize,
    },
    /// A varint or length inside the body failed to decode.
    Body(CodecError),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A boolean byte is neither `00` nor `01`.
    BadBool(u8),
    /// Bytes remained in the payload after the body.
    TrailingBytes(usize),
    /// A syntactically valid frame arrived where the protocol does not
    /// allow it (e.g. a response frame sent as a request).
    UnexpectedFrame(&'static str),
    /// The peer hung up cleanly at a frame boundary but *inside* an
    /// exchange — e.g. a daemon closing after verdicts were requested but
    /// before the terminating `Summary`/`Error` arrived. (EOF between
    /// exchanges is not an error; EOF inside a frame is
    /// [`Truncated`](Self::Truncated).)
    Disconnected,
    /// The peer idled past a configured read deadline. Produced only by
    /// endpoints running with a read timeout on the transport (see
    /// `net::DaemonOptions::idle_timeout`); never by decoding.
    IdleTimeout,
    /// The daemon refused the *connection* itself: it answered the accept
    /// with a [`ControlFrame::Busy`] frame scoped to
    /// [`BusyScope::Connections`] and closed (see
    /// `net::DaemonOptions::max_conns`). Raised by [`Client`] when a
    /// connection-scoped `Busy` arrives in place of any response.
    Busy {
        /// Connections active when the daemon shed this one.
        active: u64,
        /// The daemon's configured connection cap.
        limit: u64,
    },
    /// The daemon refused a *submission* in-band with a
    /// [`ControlFrame::Busy`] frame: this connection exceeded a tenant
    /// quota (see `service::TenantQuota`). The connection itself
    /// survives — the client may submit again within quota.
    QuotaExceeded {
        /// Which budget the submission exceeded.
        scope: BusyScope,
        /// The offending measured value (declared sessions, or batches
        /// already admitted on this connection).
        active: u64,
        /// The configured quota.
        limit: u64,
    },
    /// A `Busy` frame carried a scope byte naming no known
    /// [`BusyScope`].
    BadScope(u8),
    /// A `ReferenceAck` frame carried a status byte naming no known
    /// [`AckStatus`].
    BadAckStatus(u8),
    /// A `SubmitBatch` named a reference id the daemon's registry does
    /// not hold. Raised by [`Client::submit_batch_for`] when the daemon
    /// answers with an [`AckStatus::Unknown`] ack; the connection
    /// survives — register the reference with
    /// [`Client::put_reference`] and resubmit.
    UnknownReference(ReferenceId),
    /// The daemon answered `Unknown` for the same reference *again* after
    /// a successful re-put: another tenant's puts are evicting it between
    /// our `PutReference` and our resubmission (registry thrash under a
    /// tight `--reference-budget`). Raised by
    /// [`Client::submit_batch_reput`] after its bounded retry is
    /// exhausted; retrying further would livelock, so the caller must
    /// back off or the operator must raise the budget.
    ReferenceThrash(ReferenceId),
    /// The transport failed.
    Io(io::ErrorKind, String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Truncated => write!(f, "control frame truncated"),
            ControlError::BadMagic => write!(f, "bad magic (not a TDRC frame)"),
            ControlError::UnsupportedVersion(v) => {
                write!(f, "unsupported control-plane version {v}")
            }
            ControlError::UnsupportedFlags(x) => {
                write!(f, "unsupported control-frame flags {x:#06x}")
            }
            ControlError::BadChecksum { stored, computed } => write!(
                f,
                "control frame checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            ControlError::UnknownKind(k) => write!(f, "unknown control-frame kind {k:#04x}"),
            ControlError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "control frame of {len} bytes exceeds the {max}-byte bound"
                )
            }
            ControlError::Body(e) => write!(f, "control-frame body failed to decode: {e}"),
            ControlError::BadUtf8 => write!(f, "control-frame string is not valid UTF-8"),
            ControlError::BadBool(b) => {
                write!(f, "control-frame boolean must be 00 or 01, got {b:#04x}")
            }
            ControlError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes inside control frame")
            }
            ControlError::UnexpectedFrame(kind) => {
                write!(f, "unexpected {kind} frame for this endpoint")
            }
            ControlError::Disconnected => {
                write!(f, "peer disconnected mid-exchange")
            }
            ControlError::IdleTimeout => {
                write!(f, "peer idled past the configured read deadline")
            }
            ControlError::Busy { active, limit } => write!(
                f,
                "daemon is at its connection cap ({active} active, limit {limit})"
            ),
            ControlError::QuotaExceeded {
                scope,
                active,
                limit,
            } => write!(
                f,
                "tenant quota exceeded ({}: {active} against a limit of {limit})",
                scope.name()
            ),
            ControlError::BadScope(b) => {
                write!(f, "busy-frame scope byte {b:#04x} names no known scope")
            }
            ControlError::BadAckStatus(b) => {
                write!(
                    f,
                    "reference-ack status byte {b:#04x} names no known status"
                )
            }
            ControlError::UnknownReference(id) => {
                write!(f, "reference {id} is not registered with the daemon")
            }
            ControlError::ReferenceThrash(id) => {
                write!(
                    f,
                    "reference {id} was evicted again immediately after a \
                     successful re-put (registry budget thrash)"
                )
            }
            ControlError::Io(kind, msg) => write!(f, "transport failed ({kind:?}): {msg}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<CodecError> for ControlError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => ControlError::Truncated,
            other => ControlError::Body(other),
        }
    }
}

impl ControlError {
    pub(crate) fn from_io(e: io::Error) -> Self {
        ControlError::Io(e.kind(), e.to_string())
    }

    fn from_stream(e: StreamError) -> Self {
        match e {
            StreamError::Io(kind, msg) => ControlError::Io(kind, msg),
            StreamError::Codec(CodecError::Truncated) => ControlError::Truncated,
            StreamError::Codec(other) => ControlError::Body(other),
            StreamError::FrameTooLarge { len, max } => ControlError::FrameTooLarge { len, max },
        }
    }

    /// The per-variant tally counter name this error increments in a
    /// service's metrics (`control_err_*`; see `docs/ARCHITECTURE.md`,
    /// "Observability").
    pub fn metric_name(&self) -> &'static str {
        match self {
            ControlError::Truncated => "control_err_truncated",
            ControlError::BadMagic => "control_err_bad_magic",
            ControlError::UnsupportedVersion(_) => "control_err_unsupported_version",
            ControlError::UnsupportedFlags(_) => "control_err_unsupported_flags",
            ControlError::BadChecksum { .. } => "control_err_bad_checksum",
            ControlError::UnknownKind(_) => "control_err_unknown_kind",
            ControlError::FrameTooLarge { .. } => "control_err_frame_too_large",
            ControlError::Body(_) => "control_err_body",
            ControlError::BadUtf8 => "control_err_bad_utf8",
            ControlError::BadBool(_) => "control_err_bad_bool",
            ControlError::TrailingBytes(_) => "control_err_trailing_bytes",
            ControlError::UnexpectedFrame(_) => "control_err_unexpected_frame",
            ControlError::Disconnected => "control_err_disconnected",
            ControlError::IdleTimeout => "control_err_idle_timeout",
            ControlError::Busy { .. } => "control_err_busy",
            ControlError::QuotaExceeded { .. } => "control_err_quota_exceeded",
            ControlError::BadScope(_) => "control_err_bad_scope",
            ControlError::BadAckStatus(_) => "control_err_bad_ack_status",
            ControlError::UnknownReference(_) => "control_err_unknown_reference",
            ControlError::ReferenceThrash(_) => "control_err_reference_thrash",
            ControlError::Io(..) => "control_err_io",
        }
    }
}

/// What a [`ControlFrame::Busy`] refusal is scoped to: which budget the
/// peer ran into. Encoded as one byte on the wire; an unknown byte is
/// rejected as [`ControlError::BadScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyScope {
    /// The daemon's connection cap (`net::DaemonOptions::max_conns`):
    /// the connection itself was refused at accept time and will be
    /// closed after this frame.
    Connections,
    /// The per-connection batch budget
    /// (`service::TenantQuota::max_batches`): this submission was
    /// refused, the connection survives.
    QueuedBatches,
    /// The per-batch session budget
    /// (`service::TenantQuota::max_sessions`): the submitted batch
    /// declared more sessions than one submission may carry; the
    /// connection survives.
    InFlightSessions,
}

impl BusyScope {
    /// The scope's wire byte.
    pub fn wire_byte(self) -> u8 {
        match self {
            BusyScope::Connections => 0x00,
            BusyScope::QueuedBatches => 0x01,
            BusyScope::InFlightSessions => 0x02,
        }
    }

    /// Decode a wire byte; unknown bytes are [`ControlError::BadScope`].
    pub fn from_wire_byte(b: u8) -> Result<Self, ControlError> {
        match b {
            0x00 => Ok(BusyScope::Connections),
            0x01 => Ok(BusyScope::QueuedBatches),
            0x02 => Ok(BusyScope::InFlightSessions),
            other => Err(ControlError::BadScope(other)),
        }
    }

    /// Human-readable scope name (for error messages and logs).
    pub fn name(self) -> &'static str {
        match self {
            BusyScope::Connections => "connections",
            BusyScope::QueuedBatches => "queued batches",
            BusyScope::InFlightSessions => "in-flight sessions",
        }
    }
}

/// Frame kind bytes (one per [`ControlFrame`] variant).
mod kind {
    pub const SUBMIT_BATCH: u8 = 0x01;
    pub const VERDICT: u8 = 0x02;
    pub const SUMMARY: u8 = 0x03;
    pub const ERROR: u8 = 0x04;
    pub const SHUTDOWN: u8 = 0x05;
    pub const SHUTDOWN_ACK: u8 = 0x06;
    pub const STATS_REQUEST: u8 = 0x07;
    pub const STATS: u8 = 0x08;
    pub const BUSY: u8 = 0x09;
    pub const PUT_REFERENCE: u8 = 0x0a;
    pub const REFERENCE_ACK: u8 = 0x0b;
    pub const PUT_BATTERY: u8 = 0x0c;
    pub const BATTERY_ACK: u8 = 0x0d;
}

/// What a [`ControlFrame::ReferenceAck`] reports about a registry
/// operation. Encoded as one byte on the wire (an unknown byte is
/// rejected as [`ControlError::BadAckStatus`]); a `Rejected` status
/// additionally carries the registry's typed error rendered as a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AckStatus {
    /// The container decoded, the program verified, and the reference was
    /// admitted to the registry.
    Loaded,
    /// The reference was already resident; its recency was refreshed and
    /// the container bytes were not re-verified (the id is
    /// content-derived, so an equal id *is* an equal program).
    AlreadyResident,
    /// The container or the program it carries was refused (CRC mismatch,
    /// digest mismatch, malformed body, or `jbc::verify` failure). The
    /// string is the typed error's display form; the registry is
    /// unchanged and the connection survives.
    Rejected(String),
    /// A `SubmitBatch` named a reference the registry does not hold
    /// (only daemons emit this, answering a submission — never a
    /// `PutReference`).
    Unknown,
}

impl AckStatus {
    /// The status's wire byte.
    pub fn wire_byte(&self) -> u8 {
        match self {
            AckStatus::Loaded => 0x00,
            AckStatus::AlreadyResident => 0x01,
            AckStatus::Rejected(_) => 0x02,
            AckStatus::Unknown => 0x03,
        }
    }

    /// Human-readable status name (for logs and error messages).
    pub fn name(&self) -> &'static str {
        match self {
            AckStatus::Loaded => "loaded",
            AckStatus::AlreadyResident => "already resident",
            AckStatus::Rejected(_) => "rejected",
            AckStatus::Unknown => "unknown reference",
        }
    }
}

/// One control-plane message.
///
/// `SubmitBatch` and `Shutdown` flow client → daemon; the rest flow
/// daemon → client. Every variant encodes to one length-prefixed,
/// CRC-guarded frame ([`encode`](Self::encode)) and round-trips
/// bit-identically ([`decode_payload`](Self::decode_payload)).
#[derive(Debug, Clone, PartialEq)]
pub enum ControlFrame {
    /// Client request: audit this TDRB batch. `batch_id` is an opaque
    /// client-chosen correlation id echoed in every response frame.
    SubmitBatch {
        /// Client-chosen correlation id.
        batch_id: u64,
        /// A complete TDRB batch, verbatim.
        tdrb: Vec<u8>,
        /// Which registered reference program to audit the batch
        /// against. `None` — the only form version-1 frames could
        /// express, encoded identically — means the daemon's default
        /// reference, so every pinned v1 byte stream still decodes to
        /// the same meaning. `Some(id)` appends the 32-byte id after the
        /// TDRB (§5 of `docs/FORMATS.md`, "SubmitBatch v2"); an id the
        /// registry does not hold is answered in-band with an
        /// [`AckStatus::Unknown`] ack.
        reference: Option<ReferenceId>,
    },
    /// Daemon response: one session's verdict. Emitted in submission
    /// order (`index` is the zero-based position within the batch).
    Verdict {
        /// Correlation id of the originating request.
        batch_id: u64,
        /// Zero-based submission index within the batch.
        index: u64,
        /// The session's audit outcome, bit-exact.
        verdict: AuditVerdict,
    },
    /// Daemon response terminating a successful batch.
    Summary {
        /// Correlation id of the originating request.
        batch_id: u64,
        /// Workers that served the batch.
        workers: u64,
        /// Peak resident sessions during streamed ingest.
        peak_resident: u64,
        /// The deterministic fleet-wide aggregation.
        summary: FleetSummary,
    },
    /// Daemon response terminating a failed batch (the embedded TDRB was
    /// malformed); the daemon itself stays up.
    Error {
        /// Correlation id of the originating request.
        batch_id: u64,
        /// Human-readable failure description.
        message: String,
    },
    /// Client request: stop serving after acknowledging.
    Shutdown,
    /// Daemon response to [`Shutdown`](Self::Shutdown).
    ShutdownAck,
    /// Client request: report the service's current metrics.
    StatsRequest,
    /// Daemon response to [`StatsRequest`](Self::StatsRequest): a
    /// point-in-time [`MetricsSnapshot`]. The body encoding is ordered by
    /// metric name (the snapshot's `BTreeMap`s), so equal snapshots
    /// serialize bit-identically; float values travel as IEEE-754 bits.
    Stats {
        /// The service's metrics at the moment the request was served.
        snapshot: MetricsSnapshot,
    },
    /// Daemon refusal (admission control, `docs/FORMATS.md` §5.6). Two
    /// uses: connection-scoped (`scope = Connections`, `batch_id = 0`) —
    /// sent in place of any service at accept time, after which the
    /// daemon closes; and submission-scoped (the other scopes, `batch_id`
    /// echoing the refused `SubmitBatch`) — sent in-band, after which the
    /// connection keeps serving. Rejected submissions consume no quota.
    Busy {
        /// Correlation id of the refused request (0 for connection-scoped
        /// refusals, which precede any request).
        batch_id: u64,
        /// Which budget the peer ran into.
        scope: BusyScope,
        /// The measured value that hit the budget (active connections,
        /// admitted batches, or declared sessions).
        active: u64,
        /// The configured budget.
        limit: u64,
    },
    /// Client request: register a reference program. The body carries a
    /// complete TDRP container (`docs/FORMATS.md` §7), verbatim; the
    /// daemon decodes, verifies, and admits it to the registry, then
    /// answers with a [`ReferenceAck`](Self::ReferenceAck). A tampered
    /// or malformed container is refused *in-band*
    /// ([`AckStatus::Rejected`]) — the connection and the daemon keep
    /// serving.
    PutReference {
        /// Client-chosen correlation id (echoed in the ack).
        put_id: u64,
        /// A complete TDRP container, verbatim.
        tdrp: Vec<u8>,
    },
    /// Daemon response to a [`PutReference`](Self::PutReference) — or to
    /// a [`SubmitBatch`](Self::SubmitBatch) naming an unregistered
    /// reference (then `put_id` echoes the *batch* id and `status` is
    /// [`AckStatus::Unknown`]).
    ReferenceAck {
        /// Correlation id of the originating request.
        put_id: u64,
        /// The reference the ack concerns. For a successful load this is
        /// the content-derived id the daemon computed — the client can
        /// compare it against its own digest (self-certifying); for a
        /// rejection it is all zeroes.
        reference: ReferenceId,
        /// What the registry did.
        status: AckStatus,
        /// Canonical program bytes resident in the registry after the
        /// operation (the LRU budget's measured quantity).
        resident_bytes: u64,
    },
    /// Client request: install a trained detector battery, replacing the
    /// daemon's current one in a single atomic swap. The body carries the
    /// battery's canonical JSON form (`DetectorBattery::to_json`); the
    /// daemon parses it, requires it to be trained, installs it, and
    /// answers with a [`BatteryAck`](Self::BatteryAck). This is how a
    /// coordinator keeps battery generations consistent fleet-wide:
    /// retrain once, publish the same JSON to every backend
    /// (`docs/FORMATS.md` §8.4).
    PutBattery {
        /// Client-chosen correlation id (echoed in the ack).
        put_id: u64,
        /// The battery in its canonical JSON form, UTF-8.
        json: String,
    },
    /// Daemon response to a [`PutBattery`](Self::PutBattery).
    BatteryAck {
        /// Correlation id of the originating request.
        put_id: u64,
        /// The daemon's battery generation counter after the operation
        /// (0 on a rejection). Monotonic per daemon; a fleet is
        /// consistent when every backend reports its own counter moved.
        generation: u64,
        /// [`AckStatus::Loaded`] on success, [`AckStatus::Rejected`]
        /// (with the reason) when the JSON fails to parse, the battery is
        /// untrained, or the daemon scores TDR-only. The other statuses
        /// are never produced for batteries.
        status: AckStatus,
    },
}

impl ControlFrame {
    /// The variant's wire kind byte.
    fn kind_byte(&self) -> u8 {
        match self {
            ControlFrame::SubmitBatch { .. } => kind::SUBMIT_BATCH,
            ControlFrame::Verdict { .. } => kind::VERDICT,
            ControlFrame::Summary { .. } => kind::SUMMARY,
            ControlFrame::Error { .. } => kind::ERROR,
            ControlFrame::Shutdown => kind::SHUTDOWN,
            ControlFrame::ShutdownAck => kind::SHUTDOWN_ACK,
            ControlFrame::StatsRequest => kind::STATS_REQUEST,
            ControlFrame::Stats { .. } => kind::STATS,
            ControlFrame::Busy { .. } => kind::BUSY,
            ControlFrame::PutReference { .. } => kind::PUT_REFERENCE,
            ControlFrame::ReferenceAck { .. } => kind::REFERENCE_ACK,
            ControlFrame::PutBattery { .. } => kind::PUT_BATTERY,
            ControlFrame::BatteryAck { .. } => kind::BATTERY_ACK,
        }
    }

    /// The variant's display name (for protocol-violation errors).
    pub fn kind_name(&self) -> &'static str {
        match self {
            ControlFrame::SubmitBatch { .. } => "SubmitBatch",
            ControlFrame::Verdict { .. } => "Verdict",
            ControlFrame::Summary { .. } => "Summary",
            ControlFrame::Error { .. } => "Error",
            ControlFrame::Shutdown => "Shutdown",
            ControlFrame::ShutdownAck => "ShutdownAck",
            ControlFrame::StatsRequest => "StatsRequest",
            ControlFrame::Stats { .. } => "Stats",
            ControlFrame::Busy { .. } => "Busy",
            ControlFrame::PutReference { .. } => "PutReference",
            ControlFrame::ReferenceAck { .. } => "ReferenceAck",
            ControlFrame::PutBattery { .. } => "PutBattery",
            ControlFrame::BatteryAck { .. } => "BatteryAck",
        }
    }

    /// Encode to one complete frame: `u32` length prefix, then the
    /// payload (magic, version, flags, kind, body, CRC-32 trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&CONTROL_MAGIC);
        payload.extend_from_slice(&CONTROL_VERSION.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes()); // flags
        payload.push(self.kind_byte());
        self.put_body(&mut payload);
        let crc = wire::crc32(&payload[CONTROL_MAGIC.len()..]);
        payload.extend_from_slice(&crc.to_le_bytes());
        let mut out = Vec::with_capacity(payload.len() + 4);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn put_body(&self, out: &mut Vec<u8>) {
        match self {
            ControlFrame::SubmitBatch {
                batch_id,
                tdrb,
                reference,
            } => {
                wire::put_varint(out, *batch_id);
                wire::put_varint(out, tdrb.len() as u64);
                out.extend_from_slice(tdrb);
                // v2 extension: the reference id, when present, is the
                // final 32 bytes of the body. A `None` frame is
                // byte-identical to a version-1 frame.
                if let Some(id) = reference {
                    out.extend_from_slice(&id.0);
                }
            }
            ControlFrame::Verdict {
                batch_id,
                index,
                verdict,
            } => {
                wire::put_varint(out, *batch_id);
                wire::put_varint(out, *index);
                put_verdict(out, verdict);
            }
            ControlFrame::Summary {
                batch_id,
                workers,
                peak_resident,
                summary,
            } => {
                wire::put_varint(out, *batch_id);
                wire::put_varint(out, *workers);
                wire::put_varint(out, *peak_resident);
                put_summary(out, summary);
            }
            ControlFrame::Error { batch_id, message } => {
                wire::put_varint(out, *batch_id);
                put_string(out, message);
            }
            ControlFrame::Shutdown | ControlFrame::ShutdownAck | ControlFrame::StatsRequest => {}
            ControlFrame::Stats { snapshot } => put_snapshot(out, snapshot),
            ControlFrame::Busy {
                batch_id,
                scope,
                active,
                limit,
            } => {
                wire::put_varint(out, *batch_id);
                out.push(scope.wire_byte());
                wire::put_varint(out, *active);
                wire::put_varint(out, *limit);
            }
            ControlFrame::PutReference { put_id, tdrp } => {
                wire::put_varint(out, *put_id);
                wire::put_varint(out, tdrp.len() as u64);
                out.extend_from_slice(tdrp);
            }
            ControlFrame::ReferenceAck {
                put_id,
                reference,
                status,
                resident_bytes,
            } => {
                wire::put_varint(out, *put_id);
                out.extend_from_slice(&reference.0);
                out.push(status.wire_byte());
                wire::put_varint(out, *resident_bytes);
                if let AckStatus::Rejected(message) = status {
                    put_string(out, message);
                }
            }
            ControlFrame::PutBattery { put_id, json } => {
                wire::put_varint(out, *put_id);
                put_string(out, json);
            }
            ControlFrame::BatteryAck {
                put_id,
                generation,
                status,
            } => {
                wire::put_varint(out, *put_id);
                wire::put_varint(out, *generation);
                out.push(status.wire_byte());
                if let AckStatus::Rejected(message) = status {
                    put_string(out, message);
                }
            }
        }
    }

    /// Decode one frame payload (everything after the length prefix).
    ///
    /// Checks run in the normative order: magic, checksum, version,
    /// flags, kind, body — and the body must consume the payload exactly.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, ControlError> {
        // Smallest legal frame: magic + version + flags + kind + trailer.
        if payload.len() < CONTROL_MAGIC.len() + 2 + 2 + 1 + 4 {
            return Err(ControlError::Truncated);
        }
        if payload[..CONTROL_MAGIC.len()] != CONTROL_MAGIC {
            return Err(ControlError::BadMagic);
        }
        let trailer_at = payload.len() - 4;
        let stored = u32::from_le_bytes(payload[trailer_at..].try_into().expect("4 bytes"));
        let computed = wire::crc32(&payload[CONTROL_MAGIC.len()..trailer_at]);
        if stored != computed {
            return Err(ControlError::BadChecksum { stored, computed });
        }
        let version = u16::from_le_bytes(payload[4..6].try_into().expect("2 bytes"));
        if version != CONTROL_VERSION {
            return Err(ControlError::UnsupportedVersion(version));
        }
        let flags = u16::from_le_bytes(payload[6..8].try_into().expect("2 bytes"));
        if flags != 0 {
            return Err(ControlError::UnsupportedFlags(flags));
        }
        let frame_kind = payload[8];
        let body = &payload[9..trailer_at];
        let mut pos = 0usize;
        let frame = match frame_kind {
            kind::SUBMIT_BATCH => {
                let batch_id = wire::read_varint(body, &mut pos)?;
                let len = wire::read_varint(body, &mut pos)? as usize;
                let end = pos.checked_add(len).ok_or(ControlError::Truncated)?;
                let tdrb = body.get(pos..end).ok_or(ControlError::Truncated)?.to_vec();
                pos = end;
                // v2 extension: an empty remainder is a version-1 frame
                // (default reference); otherwise exactly 32 id bytes
                // must follow (fewer is truncation, more is trailing
                // garbage via the exact-consumption check below).
                let reference = if pos == body.len() {
                    None
                } else {
                    let end = pos.checked_add(32).ok_or(ControlError::Truncated)?;
                    let bytes = body.get(pos..end).ok_or(ControlError::Truncated)?;
                    pos = end;
                    Some(ReferenceId(bytes.try_into().expect("32 bytes")))
                };
                ControlFrame::SubmitBatch {
                    batch_id,
                    tdrb,
                    reference,
                }
            }
            kind::VERDICT => {
                let batch_id = wire::read_varint(body, &mut pos)?;
                let index = wire::read_varint(body, &mut pos)?;
                let verdict = read_verdict(body, &mut pos)?;
                ControlFrame::Verdict {
                    batch_id,
                    index,
                    verdict,
                }
            }
            kind::SUMMARY => {
                let batch_id = wire::read_varint(body, &mut pos)?;
                let workers = wire::read_varint(body, &mut pos)?;
                let peak_resident = wire::read_varint(body, &mut pos)?;
                let summary = read_summary(body, &mut pos)?;
                ControlFrame::Summary {
                    batch_id,
                    workers,
                    peak_resident,
                    summary,
                }
            }
            kind::ERROR => {
                let batch_id = wire::read_varint(body, &mut pos)?;
                let message = read_string(body, &mut pos)?;
                ControlFrame::Error { batch_id, message }
            }
            kind::SHUTDOWN => ControlFrame::Shutdown,
            kind::SHUTDOWN_ACK => ControlFrame::ShutdownAck,
            kind::STATS_REQUEST => ControlFrame::StatsRequest,
            kind::STATS => ControlFrame::Stats {
                snapshot: read_snapshot(body, &mut pos)?,
            },
            kind::BUSY => {
                let batch_id = wire::read_varint(body, &mut pos)?;
                let scope_byte = *body.get(pos).ok_or(ControlError::Truncated)?;
                pos += 1;
                let scope = BusyScope::from_wire_byte(scope_byte)?;
                let active = wire::read_varint(body, &mut pos)?;
                let limit = wire::read_varint(body, &mut pos)?;
                ControlFrame::Busy {
                    batch_id,
                    scope,
                    active,
                    limit,
                }
            }
            kind::PUT_REFERENCE => {
                let put_id = wire::read_varint(body, &mut pos)?;
                let len = wire::read_varint(body, &mut pos)? as usize;
                let end = pos.checked_add(len).ok_or(ControlError::Truncated)?;
                let tdrp = body.get(pos..end).ok_or(ControlError::Truncated)?.to_vec();
                pos = end;
                ControlFrame::PutReference { put_id, tdrp }
            }
            kind::REFERENCE_ACK => {
                let put_id = wire::read_varint(body, &mut pos)?;
                let end = pos.checked_add(32).ok_or(ControlError::Truncated)?;
                let id_bytes = body.get(pos..end).ok_or(ControlError::Truncated)?;
                let reference = ReferenceId(id_bytes.try_into().expect("32 bytes"));
                pos = end;
                let status_byte = *body.get(pos).ok_or(ControlError::Truncated)?;
                pos += 1;
                let resident_bytes = wire::read_varint(body, &mut pos)?;
                let status = match status_byte {
                    0x00 => AckStatus::Loaded,
                    0x01 => AckStatus::AlreadyResident,
                    0x02 => AckStatus::Rejected(read_string(body, &mut pos)?),
                    0x03 => AckStatus::Unknown,
                    other => return Err(ControlError::BadAckStatus(other)),
                };
                ControlFrame::ReferenceAck {
                    put_id,
                    reference,
                    status,
                    resident_bytes,
                }
            }
            kind::PUT_BATTERY => {
                let put_id = wire::read_varint(body, &mut pos)?;
                let json = read_string(body, &mut pos)?;
                ControlFrame::PutBattery { put_id, json }
            }
            kind::BATTERY_ACK => {
                let put_id = wire::read_varint(body, &mut pos)?;
                let generation = wire::read_varint(body, &mut pos)?;
                let status_byte = *body.get(pos).ok_or(ControlError::Truncated)?;
                pos += 1;
                let status = match status_byte {
                    0x00 => AckStatus::Loaded,
                    0x01 => AckStatus::AlreadyResident,
                    0x02 => AckStatus::Rejected(read_string(body, &mut pos)?),
                    0x03 => AckStatus::Unknown,
                    other => return Err(ControlError::BadAckStatus(other)),
                };
                ControlFrame::BatteryAck {
                    put_id,
                    generation,
                    status,
                }
            }
            other => return Err(ControlError::UnknownKind(other)),
        };
        if pos != body.len() {
            return Err(ControlError::TrailingBytes(body.len() - pos));
        }
        Ok(frame)
    }

    /// Write one encoded frame to `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), ControlError> {
        writer
            .write_all(&self.encode())
            .map_err(ControlError::from_io)
    }

    /// Read one frame from `reader` with the default length bound.
    ///
    /// `Ok(None)` is clean end-of-stream at a frame boundary; EOF inside
    /// a frame is [`ControlError::Truncated`].
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Option<Self>, ControlError> {
        Self::read_from_bounded(reader, DEFAULT_MAX_CONTROL_FRAME)
    }

    /// [`read_from`](Self::read_from) with an explicit frame-length bound.
    ///
    /// Memory grows with bytes actually *received*, never with the
    /// declared length alone: a peer that announces a near-bound frame
    /// and then stalls (or disconnects) pins at most one read chunk, not
    /// the whole declared allocation — on a network-facing daemon the
    /// declared length is attacker-controlled, so the up-front
    /// `vec![0; len]` a naive reader would do is an asymmetric
    /// memory-exhaustion primitive.
    pub fn read_from_bounded<R: Read>(
        reader: &mut R,
        max_len: usize,
    ) -> Result<Option<Self>, ControlError> {
        let len = match read_length_prefix(reader).map_err(ControlError::from_stream)? {
            None => return Ok(None),
            Some(len) => len,
        };
        if len > max_len {
            return Err(ControlError::FrameTooLarge { len, max: max_len });
        }
        let mut payload = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        while payload.len() < len {
            let want = (len - payload.len()).min(chunk.len());
            let got = read_full(reader, &mut chunk[..want]).map_err(ControlError::from_stream)?;
            if got == 0 {
                return Err(ControlError::Truncated);
            }
            payload.extend_from_slice(&chunk[..got]);
        }
        Self::decode_payload(&payload).map(Some)
    }
}

// ---------------------------------------------------------------------------
// Body field encodings
// ---------------------------------------------------------------------------

fn put_string(out: &mut Vec<u8>, s: &str) {
    wire::put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_string(buf: &[u8], pos: &mut usize) -> Result<String, ControlError> {
    let len = wire::read_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).ok_or(ControlError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(ControlError::Truncated)?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| ControlError::BadUtf8)
}

fn put_verdict(out: &mut Vec<u8>, v: &AuditVerdict) {
    wire::put_varint(out, v.session_id);
    wire::put_f64(out, v.score);
    out.push(v.flagged as u8);
    wire::put_varint(out, v.tx_packets as u64);
    wire::put_varint(out, v.replayed_cycles);
    wire::put_varint(out, v.detector_scores.len() as u64);
    for (name, &score) in &v.detector_scores {
        put_string(out, name);
        wire::put_f64(out, score);
    }
    match &v.error {
        None => out.push(0),
        Some(msg) => {
            out.push(1);
            put_string(out, msg);
        }
    }
}

fn read_bool(buf: &[u8], pos: &mut usize) -> Result<bool, ControlError> {
    let byte = *buf.get(*pos).ok_or(ControlError::Truncated)?;
    *pos += 1;
    match byte {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(ControlError::BadBool(other)),
    }
}

fn read_verdict(buf: &[u8], pos: &mut usize) -> Result<AuditVerdict, ControlError> {
    let session_id = wire::read_varint(buf, pos)?;
    let score = wire::read_f64(buf, pos)?;
    let flagged = read_bool(buf, pos)?;
    let tx_packets = wire::read_varint(buf, pos)? as usize;
    let replayed_cycles = wire::read_varint(buf, pos)?;
    let n_scores = wire::read_varint(buf, pos)? as usize;
    let mut detector_scores = BTreeMap::new();
    for _ in 0..n_scores {
        let name = read_string(buf, pos)?;
        let score = wire::read_f64(buf, pos)?;
        detector_scores.insert(name, score);
    }
    let error = if read_bool(buf, pos)? {
        Some(read_string(buf, pos)?)
    } else {
        None
    };
    Ok(AuditVerdict {
        session_id,
        score,
        flagged,
        tx_packets,
        replayed_cycles,
        detector_scores,
        error,
    })
}

fn put_summary(out: &mut Vec<u8>, s: &FleetSummary) {
    wire::put_varint(out, s.sessions);
    wire::put_varint(out, s.flagged.len() as u64);
    for &id in &s.flagged {
        wire::put_varint(out, id);
    }
    wire::put_varint(out, s.errors);
    for &count in &s.histogram.counts {
        wire::put_varint(out, count);
    }
    wire::put_f64(out, s.max_score);
    wire::put_f64(out, s.mean_score);
    wire::put_varint(out, s.replayed_cycles);
    wire::put_varint(out, s.detector_stats.len() as u64);
    for (name, stats) in &s.detector_stats {
        put_string(out, name);
        wire::put_f64(out, stats.mean);
        wire::put_f64(out, stats.max);
    }
}

fn read_summary(buf: &[u8], pos: &mut usize) -> Result<FleetSummary, ControlError> {
    let sessions = wire::read_varint(buf, pos)?;
    let n_flagged = wire::read_varint(buf, pos)? as usize;
    // Bounded by what the body can possibly hold (each id is ≥ 1 byte),
    // not by the equally attacker-controlled `sessions` count — a crafted
    // frame must not drive the allocation below.
    if n_flagged as u64 > sessions || n_flagged > buf.len().saturating_sub(*pos) {
        return Err(ControlError::Body(CodecError::LengthOverflow));
    }
    let mut flagged = Vec::with_capacity(n_flagged);
    for _ in 0..n_flagged {
        flagged.push(wire::read_varint(buf, pos)?);
    }
    let errors = wire::read_varint(buf, pos)?;
    let mut histogram = ScoreHistogram::default();
    for slot in 0..EDGES.len() {
        histogram.counts[slot] = wire::read_varint(buf, pos)?;
    }
    let max_score = wire::read_f64(buf, pos)?;
    let mean_score = wire::read_f64(buf, pos)?;
    let replayed_cycles = wire::read_varint(buf, pos)?;
    let n_stats = wire::read_varint(buf, pos)? as usize;
    let mut detector_stats = BTreeMap::new();
    for _ in 0..n_stats {
        let name = read_string(buf, pos)?;
        let mean = wire::read_f64(buf, pos)?;
        let max = wire::read_f64(buf, pos)?;
        detector_stats.insert(name, DetectorStats { mean, max });
    }
    Ok(FleetSummary {
        sessions,
        flagged,
        errors,
        histogram,
        max_score,
        mean_score,
        replayed_cycles,
        detector_stats,
    })
}

/// Body-length bound for an attacker-declared element count: each element
/// occupies at least `min_bytes` on the wire, so a count the remaining
/// body cannot possibly hold is a length overflow, rejected before any
/// allocation (same discipline as `read_summary`'s flagged bound).
fn bounded_count(
    buf: &[u8],
    pos: usize,
    declared: u64,
    min_bytes: usize,
) -> Result<usize, ControlError> {
    // A zero minimum would make the bound vacuous: `remaining / 1` after
    // the release-only `.max(1)` below admits up to one element per
    // remaining byte, silently weakening the guard by a factor of the
    // caller's true element size. Every call site must pass the real
    // per-element wire minimum (≥ 1 byte); a zero is a caller bug, caught
    // loudly in debug builds while release builds keep the (weakened but
    // still finite) divide-by-one bound instead of panicking mid-decode.
    debug_assert!(
        min_bytes > 0,
        "bounded_count requires the true per-element minimum (≥ 1 byte), got 0"
    );
    let remaining = buf.len().saturating_sub(pos);
    if declared > (remaining / min_bytes.max(1)) as u64 {
        return Err(ControlError::Body(CodecError::LengthOverflow));
    }
    Ok(declared as usize)
}

fn put_snapshot(out: &mut Vec<u8>, s: &MetricsSnapshot) {
    wire::put_varint(out, s.counters.len() as u64);
    for (name, &v) in &s.counters {
        put_string(out, name);
        wire::put_varint(out, v);
    }
    wire::put_varint(out, s.gauges.len() as u64);
    for (name, &v) in &s.gauges {
        put_string(out, name);
        wire::put_varint(out, v);
    }
    wire::put_varint(out, s.float_gauges.len() as u64);
    for (name, &v) in &s.float_gauges {
        put_string(out, name);
        wire::put_f64(out, v);
    }
    wire::put_varint(out, s.histograms.len() as u64);
    for (name, h) in &s.histograms {
        put_string(out, name);
        wire::put_varint(out, h.edges.len() as u64);
        for &edge in &h.edges {
            wire::put_f64(out, edge);
        }
        for &count in &h.counts {
            wire::put_varint(out, count);
        }
        wire::put_varint(out, h.total);
        wire::put_f64(out, h.sum);
    }
}

fn read_snapshot(buf: &[u8], pos: &mut usize) -> Result<MetricsSnapshot, ControlError> {
    // A name is ≥ 1 byte (its length varint) and every value ≥ 1 byte, so
    // each entry of every family is ≥ 2 wire bytes.
    let n = wire::read_varint(buf, pos)?;
    let n_counters = bounded_count(buf, *pos, n, 2)?;
    let mut counters = BTreeMap::new();
    for _ in 0..n_counters {
        let name = read_string(buf, pos)?;
        counters.insert(name, wire::read_varint(buf, pos)?);
    }
    let n = wire::read_varint(buf, pos)?;
    let n_gauges = bounded_count(buf, *pos, n, 2)?;
    let mut gauges = BTreeMap::new();
    for _ in 0..n_gauges {
        let name = read_string(buf, pos)?;
        gauges.insert(name, wire::read_varint(buf, pos)?);
    }
    let n = wire::read_varint(buf, pos)?;
    let n_float = bounded_count(buf, *pos, n, 9)?; // name ≥ 1 + f64 = 8
    let mut float_gauges = BTreeMap::new();
    for _ in 0..n_float {
        let name = read_string(buf, pos)?;
        float_gauges.insert(name, wire::read_f64(buf, pos)?);
    }
    let n = wire::read_varint(buf, pos)?;
    let n_hist = bounded_count(buf, *pos, n, 2)?;
    let mut histograms = BTreeMap::new();
    for _ in 0..n_hist {
        let name = read_string(buf, pos)?;
        let n = wire::read_varint(buf, pos)?;
        let n_edges = bounded_count(buf, *pos, n, 8)?; // each edge is an f64
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            edges.push(wire::read_f64(buf, pos)?);
        }
        let mut counts = Vec::with_capacity(n_edges + 1);
        for _ in 0..=n_edges {
            counts.push(wire::read_varint(buf, pos)?);
        }
        let total = wire::read_varint(buf, pos)?;
        let sum = wire::read_f64(buf, pos)?;
        histograms.insert(
            name,
            HistogramSnapshot {
                edges,
                counts,
                total,
                sum,
            },
        );
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        float_gauges,
        histograms,
    })
}

// ---------------------------------------------------------------------------
// Typed client
// ---------------------------------------------------------------------------

/// The terminating `Summary` frame of a successful batch, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Workers that served the batch (echoed from the daemon's report).
    pub workers: u64,
    /// Peak resident sessions during the daemon's streamed ingest.
    pub peak_resident: u64,
    /// The deterministic fleet-wide aggregation.
    pub summary: FleetSummary,
}

/// What one [`Client::put_reference`] exchange produced: the daemon's
/// `ReferenceAck`, as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutOutcome {
    /// The content-derived reference id the daemon computed (all zeroes
    /// on a rejection). Compare against a locally computed
    /// [`jbc::container::reference_id`] to confirm the daemon holds the
    /// program you meant.
    pub reference: ReferenceId,
    /// What the registry did (loaded / already resident / rejected).
    pub status: AckStatus,
    /// Canonical program bytes resident in the registry afterwards.
    pub resident_bytes: u64,
}

/// What one [`Client::put_battery`] exchange produced: the daemon's
/// `BatteryAck`, as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatteryOutcome {
    /// The daemon's battery generation counter after the install (0 on a
    /// rejection). Monotonic per daemon.
    pub generation: u64,
    /// [`AckStatus::Loaded`] on success, [`AckStatus::Rejected`] with the
    /// reason otherwise.
    pub status: AckStatus,
}

/// Everything one `SubmitBatch` exchange produced.
///
/// `verdicts` holds the per-session verdicts in submission order (the
/// daemon emits them in-order; [`Client`] verifies the indexes are
/// contiguous). `result` is the terminating frame: a [`BatchSummary`] on
/// success, or the daemon's in-band `Error` message when the embedded
/// TDRB was malformed — in which case verdicts already streamed for
/// earlier sessions are still present and valid.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// The correlation id this exchange used.
    pub batch_id: u64,
    /// Per-session verdicts, in submission order.
    pub verdicts: Vec<AuditVerdict>,
    /// Terminating frame: summary, or the in-band error message.
    pub result: Result<BatchSummary, String>,
}

impl BatchOutcome {
    /// The summary, panicking with the daemon's message on an in-band
    /// error (convenience for callers that treat batch failure as fatal).
    pub fn expect_summary(self) -> BatchSummary {
        match self.result {
            Ok(summary) => summary,
            Err(msg) => panic!("daemon reported batch {} failed: {msg}", self.batch_id),
        }
    }
}

/// A typed TDRC client over any `Read + Write` transport.
///
/// Wraps the request/response choreography of §5 of `docs/FORMATS.md`:
/// [`submit_batch`](Self::submit_batch) writes one `SubmitBatch` frame
/// and reads `Verdict*` then `Summary`/`Error`, verifying the batch-id
/// echo and the contiguous submission-index order as it goes;
/// [`shutdown`](Self::shutdown) performs the `Shutdown`/`ShutdownAck`
/// handshake. The same client drives a `TcpStream` (the `tdrd` binary and
/// the TCP tests), an in-memory [`duplex`](crate::service::duplex) end,
/// or anything else that moves bytes.
///
/// Decoded verdicts are **bit-identical** to the ones the service
/// produced — the wire encoding round-trips IEEE-754 bits, pinned by the
/// integration suite against in-process submission.
#[derive(Debug)]
pub struct Client<T: Read + Write> {
    transport: T,
}

impl<T: Read + Write> Client<T> {
    /// Wrap a connected transport.
    pub fn new(transport: T) -> Self {
        Client { transport }
    }

    /// Submit one TDRB batch and block until its terminating frame.
    ///
    /// Protocol-level failures (corrupt frames, a wrong batch id, frames
    /// out of order, the daemon hanging up mid-exchange) are `Err`;
    /// batch-content failures are in-band and land in
    /// [`BatchOutcome::result`].
    pub fn submit_batch(
        &mut self,
        batch_id: u64,
        tdrb: Vec<u8>,
    ) -> Result<BatchOutcome, ControlError> {
        self.submit_batch_with(batch_id, tdrb, |_, _| {})
    }

    /// [`submit_batch`](Self::submit_batch) against a *registered*
    /// reference program instead of the daemon's default: the frame goes
    /// out as SubmitBatch v2, carrying `reference`. If the registry does
    /// not hold that id the daemon answers in-band and this returns
    /// [`ControlError::UnknownReference`] — register it with
    /// [`put_reference`](Self::put_reference) and resubmit; the
    /// connection survives.
    pub fn submit_batch_for(
        &mut self,
        batch_id: u64,
        tdrb: Vec<u8>,
        reference: ReferenceId,
    ) -> Result<BatchOutcome, ControlError> {
        self.submit_batch_inner(batch_id, tdrb, Some(reference), |_, _| {})
    }

    /// [`submit_batch_for`](Self::submit_batch_for) with the bounded
    /// Unknown-reference recovery built in: on an
    /// [`AckStatus::Unknown`] answer the client re-puts `tdrp` (the
    /// container whose content-derived id is `reference`) and resubmits
    /// **once**. Content addressing makes the re-put always safe; the cap
    /// exists because under a tight `--reference-budget` a competing
    /// tenant's puts can evict the reference *between* our re-put and our
    /// resubmission, and an unbounded put→resubmit loop then livelocks.
    /// A second `Unknown` is surfaced as
    /// [`ControlError::ReferenceThrash`] — the caller backs off, or the
    /// operator raises the budget.
    pub fn submit_batch_reput(
        &mut self,
        batch_id: u64,
        tdrb: Vec<u8>,
        reference: ReferenceId,
        tdrp: &[u8],
    ) -> Result<BatchOutcome, ControlError> {
        match self.submit_batch_for(batch_id, tdrb.clone(), reference) {
            Err(ControlError::UnknownReference(id)) if id == reference => {
                let put = self.put_reference(batch_id, tdrp.to_vec())?;
                match put.status {
                    AckStatus::Loaded | AckStatus::AlreadyResident
                        if put.reference == reference => {}
                    // The daemon refused (or renamed) a container this
                    // very connection previously loaded under this id —
                    // content addressing forbids that.
                    _ => {
                        return Err(ControlError::UnexpectedFrame(
                            "ReferenceAck (re-put refused)",
                        ))
                    }
                }
                match self.submit_batch_for(batch_id, tdrb, reference) {
                    Err(ControlError::UnknownReference(id)) if id == reference => {
                        Err(ControlError::ReferenceThrash(reference))
                    }
                    other => other,
                }
            }
            other => other,
        }
    }

    /// [`submit_batch`](Self::submit_batch), invoking `on_verdict` for
    /// each verdict frame as it arrives (before it is collected) — the
    /// pull-streaming hook daemon clients use for live progress.
    pub fn submit_batch_with(
        &mut self,
        batch_id: u64,
        tdrb: Vec<u8>,
        on_verdict: impl FnMut(u64, &AuditVerdict),
    ) -> Result<BatchOutcome, ControlError> {
        self.submit_batch_inner(batch_id, tdrb, None, on_verdict)
    }

    fn submit_batch_inner(
        &mut self,
        batch_id: u64,
        tdrb: Vec<u8>,
        reference: Option<ReferenceId>,
        mut on_verdict: impl FnMut(u64, &AuditVerdict),
    ) -> Result<BatchOutcome, ControlError> {
        ControlFrame::SubmitBatch {
            batch_id,
            tdrb,
            reference,
        }
        .write_to(&mut self.transport)?;
        self.transport.flush().map_err(ControlError::from_io)?;
        let mut verdicts: Vec<AuditVerdict> = Vec::new();
        loop {
            let frame =
                ControlFrame::read_from(&mut self.transport)?.ok_or(ControlError::Disconnected)?;
            match frame {
                ControlFrame::Verdict {
                    batch_id: got,
                    index,
                    verdict,
                } => {
                    if got != batch_id {
                        return Err(ControlError::UnexpectedFrame("Verdict (foreign batch id)"));
                    }
                    if index != verdicts.len() as u64 {
                        return Err(ControlError::UnexpectedFrame("Verdict (out of order)"));
                    }
                    on_verdict(index, &verdict);
                    verdicts.push(verdict);
                }
                ControlFrame::Summary {
                    batch_id: got,
                    workers,
                    peak_resident,
                    summary,
                } => {
                    if got != batch_id {
                        return Err(ControlError::UnexpectedFrame("Summary (foreign batch id)"));
                    }
                    return Ok(BatchOutcome {
                        batch_id,
                        verdicts,
                        result: Ok(BatchSummary {
                            workers,
                            peak_resident,
                            summary,
                        }),
                    });
                }
                ControlFrame::Error {
                    batch_id: got,
                    message,
                } => {
                    if got != batch_id {
                        return Err(ControlError::UnexpectedFrame("Error (foreign batch id)"));
                    }
                    return Ok(BatchOutcome {
                        batch_id,
                        verdicts,
                        result: Err(message),
                    });
                }
                ControlFrame::Busy {
                    batch_id: got,
                    scope,
                    active,
                    limit,
                } => {
                    // A connection-scoped refusal can race our submission:
                    // the daemon shed the connection at accept time and we
                    // only now read its parting frame.
                    if scope == BusyScope::Connections {
                        return Err(ControlError::Busy { active, limit });
                    }
                    if got != batch_id {
                        return Err(ControlError::UnexpectedFrame("Busy (foreign batch id)"));
                    }
                    return Err(ControlError::QuotaExceeded {
                        scope,
                        active,
                        limit,
                    });
                }
                ControlFrame::ReferenceAck {
                    put_id: got,
                    reference,
                    status: AckStatus::Unknown,
                    ..
                } => {
                    // The daemon refused the submission in-band: the
                    // named reference is not registered. `put_id` echoes
                    // the batch id here (§5, "ReferenceAck").
                    if got != batch_id {
                        return Err(ControlError::UnexpectedFrame(
                            "ReferenceAck (foreign batch id)",
                        ));
                    }
                    return Err(ControlError::UnknownReference(reference));
                }
                other => return Err(ControlError::UnexpectedFrame(other.kind_name())),
            }
        }
    }

    /// Register a reference program: one `PutReference` frame carrying a
    /// complete TDRP container out, exactly one `ReferenceAck` back.
    ///
    /// A refused container ([`AckStatus::Rejected`] — CRC/digest
    /// mismatch, malformed body, verify failure) is *not* a protocol
    /// error: it lands in [`PutOutcome::status`] and the connection keeps
    /// serving, mirroring how batch-content failures travel in-band.
    pub fn put_reference(
        &mut self,
        put_id: u64,
        tdrp: Vec<u8>,
    ) -> Result<PutOutcome, ControlError> {
        ControlFrame::PutReference { put_id, tdrp }.write_to(&mut self.transport)?;
        self.transport.flush().map_err(ControlError::from_io)?;
        match ControlFrame::read_from(&mut self.transport)? {
            Some(ControlFrame::ReferenceAck {
                put_id: got,
                reference,
                status,
                resident_bytes,
            }) => {
                if got != put_id {
                    return Err(ControlError::UnexpectedFrame(
                        "ReferenceAck (foreign put id)",
                    ));
                }
                Ok(PutOutcome {
                    reference,
                    status,
                    resident_bytes,
                })
            }
            Some(ControlFrame::Busy {
                scope: BusyScope::Connections,
                active,
                limit,
                ..
            }) => Err(ControlError::Busy { active, limit }),
            Some(other) => Err(ControlError::UnexpectedFrame(other.kind_name())),
            None => Err(ControlError::Disconnected),
        }
    }

    /// Install a trained detector battery: one `PutBattery` frame
    /// carrying the battery's canonical JSON out, exactly one
    /// `BatteryAck` back.
    ///
    /// A refused battery ([`AckStatus::Rejected`] — unparseable JSON,
    /// untrained, or a TDR-only daemon) is *not* a protocol error: it
    /// lands in [`BatteryOutcome::status`] and the connection keeps
    /// serving. Against a coordinator the install fans out to every
    /// backend, so one call publishes one new generation fleet-wide.
    pub fn put_battery(
        &mut self,
        put_id: u64,
        json: String,
    ) -> Result<BatteryOutcome, ControlError> {
        ControlFrame::PutBattery { put_id, json }.write_to(&mut self.transport)?;
        self.transport.flush().map_err(ControlError::from_io)?;
        match ControlFrame::read_from(&mut self.transport)? {
            Some(ControlFrame::BatteryAck {
                put_id: got,
                generation,
                status,
            }) => {
                if got != put_id {
                    return Err(ControlError::UnexpectedFrame("BatteryAck (foreign put id)"));
                }
                Ok(BatteryOutcome { generation, status })
            }
            Some(ControlFrame::Busy {
                scope: BusyScope::Connections,
                active,
                limit,
                ..
            }) => Err(ControlError::Busy { active, limit }),
            Some(other) => Err(ControlError::UnexpectedFrame(other.kind_name())),
            None => Err(ControlError::Disconnected),
        }
    }

    /// Fetch the daemon's current metrics: one `StatsRequest` frame out,
    /// exactly one `Stats` frame back. Callable between batch exchanges
    /// on the same connection; the snapshot covers the whole *service*
    /// (every connection's traffic), not just this client's.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, ControlError> {
        ControlFrame::StatsRequest.write_to(&mut self.transport)?;
        self.transport.flush().map_err(ControlError::from_io)?;
        match ControlFrame::read_from(&mut self.transport)? {
            Some(ControlFrame::Stats { snapshot }) => Ok(snapshot),
            Some(ControlFrame::Busy {
                scope: BusyScope::Connections,
                active,
                limit,
                ..
            }) => Err(ControlError::Busy { active, limit }),
            Some(other) => Err(ControlError::UnexpectedFrame(other.kind_name())),
            None => Err(ControlError::Disconnected),
        }
    }

    /// Perform the `Shutdown`/`ShutdownAck` handshake and consume the
    /// client (over TCP this ends the *connection*; the daemon keeps
    /// serving other connections — `docs/FORMATS.md` §5.4).
    pub fn shutdown(mut self) -> Result<T, ControlError> {
        ControlFrame::Shutdown.write_to(&mut self.transport)?;
        self.transport.flush().map_err(ControlError::from_io)?;
        match ControlFrame::read_from(&mut self.transport)? {
            Some(ControlFrame::ShutdownAck) => Ok(self.transport),
            Some(ControlFrame::Busy {
                scope: BusyScope::Connections,
                active,
                limit,
                ..
            }) => Err(ControlError::Busy { active, limit }),
            Some(other) => Err(ControlError::UnexpectedFrame(other.kind_name())),
            None => Err(ControlError::Disconnected),
        }
    }

    /// A shared view of the transport.
    pub fn get_ref(&self) -> &T {
        &self.transport
    }

    /// Unwrap the transport without the shutdown handshake.
    pub fn into_inner(self) -> T {
        self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_verdict() -> AuditVerdict {
        AuditVerdict {
            session_id: 7,
            score: 0.5,
            flagged: true,
            tx_packets: 3,
            replayed_cycles: 1000,
            detector_scores: BTreeMap::new(),
            error: None,
        }
    }

    fn sample_summary() -> FleetSummary {
        let verdicts = vec![
            sample_verdict(),
            AuditVerdict {
                session_id: 9,
                score: 0.001,
                flagged: false,
                tx_packets: 5,
                replayed_cycles: 2_500,
                detector_scores: [
                    ("Sanity".to_string(), 0.001),
                    ("Shape test".to_string(), -1.25),
                ]
                .into_iter()
                .collect(),
                error: None,
            },
            AuditVerdict {
                session_id: 10,
                score: 1.0,
                flagged: true,
                tx_packets: 0,
                replayed_cycles: 0,
                detector_scores: BTreeMap::new(),
                error: Some("replay failed".to_string()),
            },
        ];
        FleetSummary::from_verdicts(&verdicts)
    }

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: [
                ("sessions_audited".to_string(), 12u64),
                ("conn_accepted".to_string(), 3),
                ("bytes_in".to_string(), u64::MAX),
            ]
            .into_iter()
            .collect(),
            gauges: [("conn_active".to_string(), 1u64)].into_iter().collect(),
            float_gauges: [
                ("uptime_seconds".to_string(), 12.5f64),
                ("retrain_drift_mean".to_string(), -0.0),
            ]
            .into_iter()
            .collect(),
            histograms: [(
                "verdict_latency_us".to_string(),
                HistogramSnapshot {
                    edges: vec![50.0, 100.0, 250.0],
                    counts: vec![1, 2, 3, 4],
                    total: 10,
                    sum: 1234.5,
                },
            )]
            .into_iter()
            .collect(),
        }
    }

    fn every_frame() -> Vec<ControlFrame> {
        vec![
            ControlFrame::SubmitBatch {
                batch_id: 42,
                tdrb: vec![0x54, 0x44, 0x52, 0x42, 1, 0, 0, 0, 0],
                reference: None,
            },
            ControlFrame::SubmitBatch {
                batch_id: 43,
                tdrb: vec![0x54, 0x44, 0x52, 0x42, 1, 0, 0, 0, 0],
                reference: Some(sample_reference_id()),
            },
            ControlFrame::Verdict {
                batch_id: 1,
                index: 0,
                verdict: sample_verdict(),
            },
            ControlFrame::Verdict {
                batch_id: 1,
                index: 2,
                verdict: AuditVerdict {
                    detector_scores: [
                        ("Sanity".to_string(), f64::MIN_POSITIVE),
                        ("CCE test".to_string(), -0.0),
                    ]
                    .into_iter()
                    .collect(),
                    error: Some("the replay diverged".to_string()),
                    ..sample_verdict()
                },
            },
            ControlFrame::Summary {
                batch_id: 1,
                workers: 4,
                peak_resident: 8,
                summary: sample_summary(),
            },
            ControlFrame::Error {
                batch_id: 9,
                message: "session 3 failed to decode: checksum mismatch".to_string(),
            },
            ControlFrame::Shutdown,
            ControlFrame::ShutdownAck,
            ControlFrame::StatsRequest,
            ControlFrame::Stats {
                snapshot: sample_snapshot(),
            },
            ControlFrame::Stats {
                snapshot: MetricsSnapshot::default(),
            },
            ControlFrame::Busy {
                batch_id: 0,
                scope: BusyScope::Connections,
                active: 4,
                limit: 4,
            },
            ControlFrame::Busy {
                batch_id: 300,
                scope: BusyScope::QueuedBatches,
                active: 8,
                limit: 8,
            },
            ControlFrame::Busy {
                batch_id: u64::MAX,
                scope: BusyScope::InFlightSessions,
                active: u64::MAX,
                limit: 1,
            },
            ControlFrame::PutReference {
                put_id: 17,
                tdrp: vec![0x54, 0x44, 0x52, 0x50, 0x01, 0x00, 0x00, 0x00],
            },
            ControlFrame::ReferenceAck {
                put_id: 17,
                reference: sample_reference_id(),
                status: AckStatus::Loaded,
                resident_bytes: 4096,
            },
            ControlFrame::ReferenceAck {
                put_id: 18,
                reference: sample_reference_id(),
                status: AckStatus::AlreadyResident,
                resident_bytes: u64::MAX,
            },
            ControlFrame::ReferenceAck {
                put_id: 19,
                reference: ReferenceId([0; 32]),
                status: AckStatus::Rejected("container checksum mismatch".to_string()),
                resident_bytes: 0,
            },
            ControlFrame::ReferenceAck {
                put_id: 20,
                reference: sample_reference_id(),
                status: AckStatus::Unknown,
                resident_bytes: 128,
            },
            ControlFrame::PutBattery {
                put_id: 21,
                json: "{\"version\":1,\"detectors\":[]}".to_string(),
            },
            ControlFrame::BatteryAck {
                put_id: 21,
                generation: 3,
                status: AckStatus::Loaded,
            },
            ControlFrame::BatteryAck {
                put_id: 22,
                generation: 0,
                status: AckStatus::Rejected("battery is untrained".to_string()),
            },
        ]
    }

    fn sample_reference_id() -> ReferenceId {
        let mut id = [0u8; 32];
        for (k, b) in id.iter_mut().enumerate() {
            *b = (k as u8).wrapping_mul(7).wrapping_add(3);
        }
        ReferenceId(id)
    }

    #[test]
    fn every_frame_roundtrips_bit_identically() {
        for frame in every_frame() {
            let bytes = frame.encode();
            let back = ControlFrame::read_from(&mut &bytes[..])
                .expect("decodes")
                .expect("one frame");
            assert_eq!(back, frame);
            // Scores must survive bit-for-bit, not just PartialEq (which
            // would conflate 0.0 and -0.0).
            if let (
                ControlFrame::Verdict { verdict: a, .. },
                ControlFrame::Verdict { verdict: b, .. },
            ) = (&frame, &back)
            {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                for (name, score) in &a.detector_scores {
                    assert_eq!(score.to_bits(), b.detector_scores[name].to_bits());
                }
            }
            // Re-encoding the decoded frame is byte-identical.
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn frame_stream_concatenates() {
        let frames = every_frame();
        let mut bytes = Vec::new();
        for frame in &frames {
            bytes.extend_from_slice(&frame.encode());
        }
        let mut src = &bytes[..];
        let mut decoded = Vec::new();
        while let Some(frame) = ControlFrame::read_from(&mut src).expect("decodes") {
            decoded.push(frame);
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let bytes = ControlFrame::Summary {
            batch_id: 1,
            workers: 2,
            peak_resident: 4,
            summary: sample_summary(),
        }
        .encode();
        for cut in [1, 3, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            let got = ControlFrame::read_from(&mut &bytes[..cut]);
            assert_eq!(got, Err(ControlError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn corruption_rejected_by_crc() {
        let clean = ControlFrame::Verdict {
            batch_id: 3,
            index: 1,
            verdict: sample_verdict(),
        }
        .encode();
        // Flip every byte after the length prefix and magic in turn; each
        // flip must surface as *some* typed error, and a flip in the body
        // or trailer must never decode silently.
        for at in 8..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[at] ^= 0x40;
            let got = ControlFrame::read_from(&mut &corrupt[..]);
            assert!(got.is_err(), "flip at {at} decoded: {got:?}");
        }
    }

    #[test]
    fn unknown_version_and_flags_rejected() {
        let clean = ControlFrame::Shutdown.encode();
        // Version and flags live at payload offsets 4/6 = frame offsets
        // 8/10. The CRC covers them, so re-seal the trailer after
        // patching to prove the *version* check fires, not the checksum.
        for (at, expect) in [
            (8usize, ControlError::UnsupportedVersion(9)),
            (10, ControlError::UnsupportedFlags(9)),
        ] {
            let mut patched = clean.clone();
            patched[at] = 9;
            let n = patched.len();
            let crc = wire::crc32(&patched[8..n - 4]);
            patched[n - 4..].copy_from_slice(&crc.to_le_bytes());
            let got = ControlFrame::read_from(&mut &patched[..]);
            assert_eq!(got, Err(expect), "patch at {at}");
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut bytes = ControlFrame::Shutdown.encode();
        bytes[12] = 0x7f; // kind byte (4-byte prefix + magic + ver + flags)
        let n = bytes.len();
        let crc = wire::crc32(&bytes[8..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ControlFrame::read_from(&mut &bytes[..]),
            Err(ControlError::UnknownKind(0x7f))
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = ControlFrame::Shutdown.encode();
        bytes[5] = b'X';
        assert_eq!(
            ControlFrame::read_from(&mut &bytes[..]),
            Err(ControlError::BadMagic)
        );
    }

    #[test]
    fn trailing_bytes_inside_payload_rejected() {
        // A Shutdown body must be empty; splice a byte in and re-seal.
        let mut bytes = ControlFrame::Shutdown.encode();
        let n = bytes.len();
        bytes.insert(n - 4, 0xaa); // before the trailer
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        let m = bytes.len();
        let crc = wire::crc32(&bytes[8..m - 4]);
        bytes[m - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ControlFrame::read_from(&mut &bytes[..]),
            Err(ControlError::TrailingBytes(1))
        );
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            ControlFrame::read_from_bounded(&mut &bytes[..], 1 << 16),
            Err(ControlError::FrameTooLarge {
                len: u32::MAX as usize,
                max: 1 << 16
            })
        );
    }

    #[test]
    fn declared_but_unsent_length_is_truncated() {
        // A peer may declare a near-bound frame and never send it; the
        // reader must classify that as truncation once the stream ends,
        // holding only the bytes that actually arrived (the incremental
        // fill in `read_from_bounded` — never `vec![0; declared]`).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(200u32 << 20).to_le_bytes()); // within the 256 MiB bound
        bytes.extend_from_slice(&[0u8; 32]); // but almost nothing follows
        assert_eq!(
            ControlFrame::read_from(&mut &bytes[..]),
            Err(ControlError::Truncated)
        );
    }

    #[test]
    fn summary_flagged_count_is_bounded() {
        // A summary claiming more flagged sessions than the sessions
        // count — or than the body could possibly hold — must be rejected
        // as length overflow, not trusted with an allocation. The second
        // case matters on its own: `sessions` is attacker-controlled too,
        // so the body length is the only trustworthy bound.
        for sessions in [2u64, u64::MAX >> 2] {
            let mut payload = Vec::new();
            payload.extend_from_slice(&CONTROL_MAGIC);
            payload.extend_from_slice(&CONTROL_VERSION.to_le_bytes());
            payload.extend_from_slice(&0u16.to_le_bytes());
            payload.push(kind::SUMMARY);
            wire::put_varint(&mut payload, 1); // batch_id
            wire::put_varint(&mut payload, 1); // workers
            wire::put_varint(&mut payload, 1); // peak
            wire::put_varint(&mut payload, sessions);
            wire::put_varint(&mut payload, u64::MAX >> 2); // preposterous flagged count
            let crc = wire::crc32(&payload[4..]);
            payload.extend_from_slice(&crc.to_le_bytes());
            assert_eq!(
                ControlFrame::decode_payload(&payload),
                Err(ControlError::Body(CodecError::LengthOverflow)),
                "sessions = {sessions}"
            );
        }
    }

    #[test]
    fn bounded_count_accepts_exactly_full_body() {
        // The boundary case: a declared count of exactly
        // `remaining / min_bytes` is the largest claim the body could
        // possibly satisfy and must be admitted; one more must not.
        let buf = [0u8; 24];
        for (pos, min_bytes) in [(0usize, 2usize), (0, 8), (4, 2), (4, 9), (23, 2)] {
            let remaining = buf.len() - pos;
            let fit = (remaining / min_bytes) as u64;
            assert_eq!(
                bounded_count(&buf, pos, fit, min_bytes),
                Ok(fit as usize),
                "pos {pos}, min {min_bytes}"
            );
            assert_eq!(
                bounded_count(&buf, pos, fit + 1, min_bytes),
                Err(ControlError::Body(CodecError::LengthOverflow)),
                "pos {pos}, min {min_bytes}"
            );
        }
    }

    #[test]
    fn bounded_count_rejects_any_claim_against_a_short_body() {
        // With fewer than `min_bytes` remaining, no nonzero count fits —
        // including when `pos` already sits at or past the end (the
        // saturating subtraction leaves zero remaining, not a wrap).
        let buf = [0u8; 8];
        for pos in [1usize, 7, 8, 9] {
            assert_eq!(
                bounded_count(&buf, pos, 1, 8),
                Err(ControlError::Body(CodecError::LengthOverflow)),
                "pos {pos}"
            );
            // A zero count is always satisfiable, even by an empty body.
            assert_eq!(bounded_count(&buf, pos, 0, 8), Ok(0), "pos {pos}");
        }
    }

    /// Pins the worked example in `docs/FORMATS.md` (§ "TDRC control
    /// frames") byte for byte. If this fails, the spec and the code have
    /// diverged — fix whichever is wrong, never both silently.
    #[test]
    fn formats_md_control_frame_bytes_are_pinned() {
        let frame = ControlFrame::Verdict {
            batch_id: 1,
            index: 0,
            verdict: AuditVerdict {
                session_id: 7,
                score: 0.5,
                flagged: true,
                tx_packets: 3,
                replayed_cycles: 1000,
                detector_scores: BTreeMap::new(),
                error: None,
            },
        };
        let expected: Vec<u8> = vec![
            0x1e, 0x00, 0x00, 0x00, // length prefix = 30
            0x54, 0x44, 0x52, 0x43, // magic "TDRC"
            0x01, 0x00, // version = 1
            0x00, 0x00, // flags = 0
            0x02, // kind = Verdict
            0x01, // batch_id = 1
            0x00, // index = 0
            0x07, // session_id = 7
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0, 0x3f, // score = 0.5
            0x01, // flagged = true
            0x03, // tx_packets = 3
            0xe8, 0x07, // replayed_cycles = 1000
            0x00, // detector-score count = 0
            0x00, // no error
            0x07, 0x5c, 0xf1, 0xe1, // CRC-32 of payload[4..26]
        ];
        assert_eq!(frame.encode(), expected);
        assert_eq!(
            ControlFrame::decode_payload(&expected[4..]).expect("decodes"),
            frame
        );
    }

    /// Pins the §5.5 worked example (`docs/FORMATS.md`) byte for byte:
    /// a `StatsRequest` and a one-counter/one-gauge `Stats` frame. As
    /// with the Verdict pin above, a failure means code and spec
    /// diverged.
    #[test]
    fn formats_md_stats_frame_bytes_are_pinned() {
        let request = ControlFrame::StatsRequest;
        let expected_request: Vec<u8> = vec![
            0x0d, 0x00, 0x00, 0x00, // length prefix = 13
            0x54, 0x44, 0x52, 0x43, // magic "TDRC"
            0x01, 0x00, // version = 1
            0x00, 0x00, // flags = 0
            0x07, // kind = StatsRequest (empty body)
            0x0e, 0x4b, 0x26, 0x65, // CRC-32 of payload[4..9]
        ];
        assert_eq!(request.encode(), expected_request);

        let stats = ControlFrame::Stats {
            snapshot: MetricsSnapshot {
                counters: [("sessions_audited".to_string(), 12u64)]
                    .into_iter()
                    .collect(),
                gauges: [("conn_active".to_string(), 1u64)].into_iter().collect(),
                float_gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            },
        };
        let mut expected_stats: Vec<u8> = vec![
            0x30, 0x00, 0x00, 0x00, // length prefix = 48
            0x54, 0x44, 0x52, 0x43, // magic "TDRC"
            0x01, 0x00, // version = 1
            0x00, 0x00, // flags = 0
            0x08, // kind = Stats
            0x01, // counter count = 1
            0x10, // name length = 16
        ];
        expected_stats.extend_from_slice(b"sessions_audited");
        expected_stats.extend_from_slice(&[
            0x0c, // value = 12
            0x01, // gauge count = 1
            0x0b, // name length = 11
        ]);
        expected_stats.extend_from_slice(b"conn_active");
        expected_stats.extend_from_slice(&[
            0x01, // value = 1
            0x00, // float-gauge count = 0
            0x00, // histogram count = 0
        ]);
        let crc = wire::crc32(&expected_stats[8..]);
        expected_stats.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(stats.encode(), expected_stats);
        assert_eq!(
            ControlFrame::decode_payload(&expected_stats[4..]).expect("decodes"),
            stats
        );
    }

    /// Pins the §5.6 worked example (`docs/FORMATS.md`) byte for byte: a
    /// connection-scoped `Busy` frame as the daemon sheds an accept at a
    /// cap of 4. As with the pins above, a failure means code and spec
    /// diverged — fix whichever is wrong, never both silently.
    #[test]
    fn formats_md_busy_frame_bytes_are_pinned() {
        let frame = ControlFrame::Busy {
            batch_id: 0,
            scope: BusyScope::Connections,
            active: 4,
            limit: 4,
        };
        let mut expected: Vec<u8> = vec![
            0x11, 0x00, 0x00, 0x00, // length prefix = 17
            0x54, 0x44, 0x52, 0x43, // magic "TDRC"
            0x01, 0x00, // version = 1
            0x00, 0x00, // flags = 0
            0x09, // kind = Busy
            0x00, // batch_id = 0 (connection-scoped)
            0x00, // scope = Connections
            0x04, // active = 4
            0x04, // limit = 4
        ];
        let crc = wire::crc32(&expected[8..]);
        expected.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(frame.encode(), expected);
        assert_eq!(
            ControlFrame::decode_payload(&expected[4..]).expect("decodes"),
            frame
        );
    }

    #[test]
    fn busy_corruption_and_truncation_rejected() {
        let clean = ControlFrame::Busy {
            batch_id: 77,
            scope: BusyScope::InFlightSessions,
            active: 9,
            limit: 8,
        }
        .encode();
        for at in 8..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[at] ^= 0x40;
            let got = ControlFrame::read_from(&mut &corrupt[..]);
            assert!(got.is_err(), "flip at {at} decoded: {got:?}");
        }
        for cut in 1..clean.len() {
            let got = ControlFrame::read_from(&mut &clean[..cut]);
            assert_eq!(got, Err(ControlError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn busy_unknown_scope_rejected_as_bad_scope() {
        // A CRC-valid Busy frame with a scope byte from the future must
        // fail on the *scope*, not on the checksum or as trailing bytes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&CONTROL_MAGIC);
        payload.extend_from_slice(&CONTROL_VERSION.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.push(kind::BUSY);
        wire::put_varint(&mut payload, 5); // batch_id
        payload.push(0x7f); // unknown scope
        wire::put_varint(&mut payload, 1); // active
        wire::put_varint(&mut payload, 1); // limit
        let crc = wire::crc32(&payload[4..]);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ControlFrame::decode_payload(&payload),
            Err(ControlError::BadScope(0x7f))
        );
    }

    #[test]
    fn busy_trailing_bytes_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&CONTROL_MAGIC);
        payload.extend_from_slice(&CONTROL_VERSION.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.push(kind::BUSY);
        wire::put_varint(&mut payload, 0);
        payload.push(0x00); // Connections
        wire::put_varint(&mut payload, 2);
        wire::put_varint(&mut payload, 2);
        payload.push(0xaa); // smuggled byte
        let crc = wire::crc32(&payload[4..]);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ControlFrame::decode_payload(&payload),
            Err(ControlError::TrailingBytes(1))
        );
    }

    #[test]
    fn client_maps_busy_frames_to_typed_errors() {
        // Submission-scoped: QuotaExceeded, echoing the batch id.
        let mut client = Client::new(Scripted::new(&[ControlFrame::Busy {
            batch_id: 6,
            scope: BusyScope::QueuedBatches,
            active: 8,
            limit: 8,
        }]));
        assert_eq!(
            client.submit_batch(6, Vec::new()),
            Err(ControlError::QuotaExceeded {
                scope: BusyScope::QueuedBatches,
                active: 8,
                limit: 8,
            })
        );
        // Submission-scoped with a foreign batch id: protocol violation.
        let mut client = Client::new(Scripted::new(&[ControlFrame::Busy {
            batch_id: 99,
            scope: BusyScope::InFlightSessions,
            active: 9,
            limit: 8,
        }]));
        assert_eq!(
            client.submit_batch(6, Vec::new()),
            Err(ControlError::UnexpectedFrame("Busy (foreign batch id)"))
        );
        // Connection-scoped: the accept-shed race surfaces as Busy from
        // every request path, regardless of the batch id (always 0).
        let shed = ControlFrame::Busy {
            batch_id: 0,
            scope: BusyScope::Connections,
            active: 4,
            limit: 4,
        };
        let expected = ControlError::Busy {
            active: 4,
            limit: 4,
        };
        let mut client = Client::new(Scripted::new(std::slice::from_ref(&shed)));
        assert_eq!(client.submit_batch(1, Vec::new()), Err(expected.clone()));
        let mut client = Client::new(Scripted::new(std::slice::from_ref(&shed)));
        assert_eq!(client.stats(), Err(expected.clone()));
        let client = Client::new(Scripted::new(std::slice::from_ref(&shed)));
        assert_eq!(client.shutdown().err(), Some(expected));
    }

    #[test]
    fn equal_snapshots_encode_bit_identically() {
        // The snapshot wire form is a function of the values alone:
        // build the same snapshot twice with different insertion orders
        // and through different construction paths — identical bytes.
        let a = ControlFrame::Stats {
            snapshot: sample_snapshot(),
        }
        .encode();
        let mut reordered = MetricsSnapshot::default();
        let sample = sample_snapshot();
        for (k, v) in sample.counters.iter().rev() {
            reordered.counters.insert(k.clone(), *v);
        }
        reordered.gauges = sample.gauges.clone();
        reordered.float_gauges = sample.float_gauges.clone();
        reordered.histograms = sample.histograms.clone();
        let b = ControlFrame::Stats {
            snapshot: reordered,
        }
        .encode();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_truncation_rejected_at_every_cut() {
        let bytes = ControlFrame::Stats {
            snapshot: sample_snapshot(),
        }
        .encode();
        for cut in [1, 3, 5, 9, 13, 14, bytes.len() / 2, bytes.len() - 1] {
            let got = ControlFrame::read_from(&mut &bytes[..cut]);
            assert_eq!(got, Err(ControlError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn stats_corruption_rejected_by_crc() {
        let clean = ControlFrame::Stats {
            snapshot: sample_snapshot(),
        }
        .encode();
        for at in 8..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[at] ^= 0x40;
            let got = ControlFrame::read_from(&mut &corrupt[..]);
            assert!(got.is_err(), "flip at {at} decoded: {got:?}");
        }
    }

    /// Declared element counts in a `Stats` body are bounded by what the
    /// body could possibly hold — a crafted frame must never drive an
    /// allocation. One case per family, plus the per-histogram edges.
    #[test]
    fn stats_declared_counts_are_bounded() {
        // (families already emitted before the huge count, huge count's
        // position label)
        type Prefix<'a> = &'a dyn Fn(&mut Vec<u8>);
        let cases: [(Prefix, &str); 4] = [
            (&|_body| {}, "counters"),
            (&|body| wire::put_varint(body, 0), "gauges"),
            (
                &|body| {
                    wire::put_varint(body, 0);
                    wire::put_varint(body, 0);
                },
                "float gauges",
            ),
            (
                &|body| {
                    wire::put_varint(body, 0);
                    wire::put_varint(body, 0);
                    wire::put_varint(body, 0);
                },
                "histograms",
            ),
        ];
        for (prefix, label) in cases {
            let mut payload = Vec::new();
            payload.extend_from_slice(&CONTROL_MAGIC);
            payload.extend_from_slice(&CONTROL_VERSION.to_le_bytes());
            payload.extend_from_slice(&0u16.to_le_bytes());
            payload.push(kind::STATS);
            prefix(&mut payload);
            wire::put_varint(&mut payload, u64::MAX >> 2); // preposterous count
            let crc = wire::crc32(&payload[4..]);
            payload.extend_from_slice(&crc.to_le_bytes());
            assert_eq!(
                ControlFrame::decode_payload(&payload),
                Err(ControlError::Body(CodecError::LengthOverflow)),
                "family: {label}"
            );
        }
        // A histogram declaring more edges than the body holds.
        let mut payload = Vec::new();
        payload.extend_from_slice(&CONTROL_MAGIC);
        payload.extend_from_slice(&CONTROL_VERSION.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.push(kind::STATS);
        wire::put_varint(&mut payload, 0); // counters
        wire::put_varint(&mut payload, 0); // gauges
        wire::put_varint(&mut payload, 0); // float gauges
        wire::put_varint(&mut payload, 1); // one histogram
        put_string(&mut payload, "h");
        wire::put_varint(&mut payload, 1 << 30); // preposterous edge count
        let crc = wire::crc32(&payload[4..]);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ControlFrame::decode_payload(&payload),
            Err(ControlError::Body(CodecError::LengthOverflow)),
            "histogram edges"
        );
    }

    #[test]
    fn stats_trailing_bytes_rejected() {
        // An empty snapshot body is exactly four zero varints; a fifth
        // byte must be trailing garbage, not silently ignored.
        let mut payload = Vec::new();
        payload.extend_from_slice(&CONTROL_MAGIC);
        payload.extend_from_slice(&CONTROL_VERSION.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.push(kind::STATS);
        for _ in 0..4 {
            wire::put_varint(&mut payload, 0);
        }
        payload.push(0xaa);
        let crc = wire::crc32(&payload[4..]);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ControlFrame::decode_payload(&payload),
            Err(ControlError::TrailingBytes(1))
        );
    }

    #[test]
    fn stats_request_with_a_body_is_trailing_bytes() {
        // StatsRequest's body is empty by definition; a peer smuggling
        // payload into it is malformed even with a valid CRC.
        let mut payload = Vec::new();
        payload.extend_from_slice(&CONTROL_MAGIC);
        payload.extend_from_slice(&CONTROL_VERSION.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.push(kind::STATS_REQUEST);
        payload.extend_from_slice(&[1, 2, 3]);
        let crc = wire::crc32(&payload[4..]);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ControlFrame::decode_payload(&payload),
            Err(ControlError::TrailingBytes(3))
        );
    }

    /// A canned transport: reads from a scripted response stream, records
    /// everything the client writes.
    struct Scripted {
        responses: io::Cursor<Vec<u8>>,
        sent: Vec<u8>,
    }

    impl Scripted {
        fn new(frames: &[ControlFrame]) -> Self {
            let mut responses = Vec::new();
            for frame in frames {
                responses.extend_from_slice(&frame.encode());
            }
            Scripted {
                responses: io::Cursor::new(responses),
                sent: Vec::new(),
            }
        }
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.responses.read(buf)
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.sent.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn client_collects_in_order_verdicts_and_summary() {
        let verdict = sample_verdict();
        let summary = sample_summary();
        let mut client = Client::new(Scripted::new(&[
            ControlFrame::Verdict {
                batch_id: 5,
                index: 0,
                verdict: verdict.clone(),
            },
            ControlFrame::Verdict {
                batch_id: 5,
                index: 1,
                verdict: verdict.clone(),
            },
            ControlFrame::Summary {
                batch_id: 5,
                workers: 2,
                peak_resident: 3,
                summary: summary.clone(),
            },
        ]));
        let mut seen = Vec::new();
        let outcome = client
            .submit_batch_with(5, vec![1, 2, 3], |i, _| seen.push(i))
            .expect("protocol clean");
        assert_eq!(seen, vec![0, 1]);
        assert_eq!(outcome.verdicts, vec![verdict.clone(), verdict]);
        assert_eq!(
            outcome.result,
            Ok(BatchSummary {
                workers: 2,
                peak_resident: 3,
                summary
            })
        );
        // The request actually went out as one SubmitBatch frame.
        let sent = client.into_inner().sent;
        assert_eq!(
            ControlFrame::read_from(&mut &sent[..])
                .expect("decodes")
                .expect("one frame"),
            ControlFrame::SubmitBatch {
                batch_id: 5,
                tdrb: vec![1, 2, 3],
                reference: None,
            }
        );
    }

    #[test]
    fn client_surfaces_in_band_errors_with_partial_verdicts() {
        let verdict = sample_verdict();
        let mut client = Client::new(Scripted::new(&[
            ControlFrame::Verdict {
                batch_id: 9,
                index: 0,
                verdict: verdict.clone(),
            },
            ControlFrame::Error {
                batch_id: 9,
                message: "session 1 failed to decode".to_string(),
            },
        ]));
        let outcome = client.submit_batch(9, Vec::new()).expect("protocol clean");
        assert_eq!(outcome.verdicts, vec![verdict]);
        assert_eq!(
            outcome.result,
            Err("session 1 failed to decode".to_string())
        );
    }

    #[test]
    fn client_rejects_foreign_ids_out_of_order_and_disconnects() {
        // Wrong batch id.
        let mut client = Client::new(Scripted::new(&[ControlFrame::Summary {
            batch_id: 8,
            workers: 1,
            peak_resident: 1,
            summary: sample_summary(),
        }]));
        assert_eq!(
            client.submit_batch(7, Vec::new()),
            Err(ControlError::UnexpectedFrame("Summary (foreign batch id)"))
        );
        // Out-of-order verdict index.
        let mut client = Client::new(Scripted::new(&[ControlFrame::Verdict {
            batch_id: 7,
            index: 1,
            verdict: sample_verdict(),
        }]));
        assert_eq!(
            client.submit_batch(7, Vec::new()),
            Err(ControlError::UnexpectedFrame("Verdict (out of order)"))
        );
        // Daemon hangs up cleanly before the terminating frame.
        let mut client = Client::new(Scripted::new(&[]));
        assert_eq!(
            client.submit_batch(7, Vec::new()),
            Err(ControlError::Disconnected)
        );
        // A request-only frame arriving as a response.
        let mut client = Client::new(Scripted::new(&[ControlFrame::Shutdown]));
        assert_eq!(
            client.submit_batch(7, Vec::new()),
            Err(ControlError::UnexpectedFrame("Shutdown"))
        );
    }

    #[test]
    fn client_stats_roundtrip_and_error_cases() {
        // Happy path: one StatsRequest out, one Stats back.
        let snapshot = sample_snapshot();
        let mut client = Client::new(Scripted::new(&[ControlFrame::Stats {
            snapshot: snapshot.clone(),
        }]));
        assert_eq!(client.stats(), Ok(snapshot));
        let sent = client.into_inner().sent;
        assert_eq!(
            ControlFrame::read_from(&mut &sent[..])
                .expect("decodes")
                .expect("one frame"),
            ControlFrame::StatsRequest
        );
        // Daemon hangs up before answering.
        let mut client = Client::new(Scripted::new(&[]));
        assert_eq!(client.stats(), Err(ControlError::Disconnected));
        // Any other frame in place of Stats is a protocol violation.
        let mut client = Client::new(Scripted::new(&[ControlFrame::ShutdownAck]));
        assert_eq!(
            client.stats(),
            Err(ControlError::UnexpectedFrame("ShutdownAck"))
        );
    }

    #[test]
    fn submit_batch_v2_reference_id_must_be_exactly_32_bytes() {
        // A v2 remainder shorter than an id is truncation; longer is
        // trailing garbage. Both re-sealed so the CRC is not the check
        // that fires.
        let clean = ControlFrame::SubmitBatch {
            batch_id: 7,
            tdrb: vec![1, 2, 3],
            reference: Some(sample_reference_id()),
        }
        .encode();
        for drop in [1usize, 31] {
            let mut patched = clean.clone();
            patched.truncate(clean.len() - 4 - drop); // strip CRC + id tail
            let crc = wire::crc32(&patched[8..]);
            patched.extend_from_slice(&crc.to_le_bytes());
            let len = (patched.len() - 4) as u32;
            patched[..4].copy_from_slice(&len.to_le_bytes());
            assert_eq!(
                ControlFrame::read_from(&mut &patched[..]),
                Err(ControlError::Truncated),
                "dropped {drop} id bytes"
            );
        }
        let mut longer = clean.clone();
        longer.insert(clean.len() - 4, 0xaa); // a 33rd id byte
        let len = (longer.len() - 4) as u32;
        longer[..4].copy_from_slice(&len.to_le_bytes());
        let n = longer.len();
        let crc = wire::crc32(&longer[8..n - 4]);
        longer[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ControlFrame::read_from(&mut &longer[..]),
            Err(ControlError::TrailingBytes(1))
        );
    }

    #[test]
    fn reference_ack_unknown_status_byte_rejected() {
        // A CRC-valid ack with a status byte from the future must fail on
        // the *status*, not the checksum.
        let mut payload = Vec::new();
        payload.extend_from_slice(&CONTROL_MAGIC);
        payload.extend_from_slice(&CONTROL_VERSION.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.push(kind::REFERENCE_ACK);
        wire::put_varint(&mut payload, 1); // put_id
        payload.extend_from_slice(&[0u8; 32]); // reference id
        payload.push(0x7f); // unknown status
        wire::put_varint(&mut payload, 0); // resident_bytes
        let crc = wire::crc32(&payload[4..]);
        payload.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ControlFrame::decode_payload(&payload),
            Err(ControlError::BadAckStatus(0x7f))
        );
    }

    #[test]
    fn reference_frames_corruption_and_truncation_rejected() {
        for frame in [
            ControlFrame::PutReference {
                put_id: 3,
                tdrp: vec![0x54, 0x44, 0x52, 0x50, 9, 9],
            },
            ControlFrame::ReferenceAck {
                put_id: 3,
                reference: sample_reference_id(),
                status: AckStatus::Rejected("digest mismatch".to_string()),
                resident_bytes: 77,
            },
        ] {
            let clean = frame.encode();
            for at in 8..clean.len() {
                let mut corrupt = clean.clone();
                corrupt[at] ^= 0x40;
                let got = ControlFrame::read_from(&mut &corrupt[..]);
                assert!(got.is_err(), "flip at {at} decoded: {got:?}");
            }
            for cut in 1..clean.len() {
                let got = ControlFrame::read_from(&mut &clean[..cut]);
                assert_eq!(got, Err(ControlError::Truncated), "cut at {cut}");
            }
        }
    }

    #[test]
    fn client_put_reference_roundtrip_and_in_band_rejection() {
        // Happy path: one PutReference out, a Loaded ack back.
        let id = sample_reference_id();
        let mut client = Client::new(Scripted::new(&[ControlFrame::ReferenceAck {
            put_id: 4,
            reference: id,
            status: AckStatus::Loaded,
            resident_bytes: 999,
        }]));
        assert_eq!(
            client.put_reference(4, vec![1, 2, 3]),
            Ok(PutOutcome {
                reference: id,
                status: AckStatus::Loaded,
                resident_bytes: 999,
            })
        );
        let sent = client.into_inner().sent;
        assert_eq!(
            ControlFrame::read_from(&mut &sent[..])
                .expect("decodes")
                .expect("one frame"),
            ControlFrame::PutReference {
                put_id: 4,
                tdrp: vec![1, 2, 3]
            }
        );
        // A rejected container is in-band data, not a protocol error.
        let mut client = Client::new(Scripted::new(&[ControlFrame::ReferenceAck {
            put_id: 5,
            reference: ReferenceId([0; 32]),
            status: AckStatus::Rejected("container checksum mismatch".to_string()),
            resident_bytes: 0,
        }]));
        let outcome = client.put_reference(5, vec![0xff]).expect("in-band");
        assert_eq!(
            outcome.status,
            AckStatus::Rejected("container checksum mismatch".to_string())
        );
        // A foreign put id is a protocol violation.
        let mut client = Client::new(Scripted::new(&[ControlFrame::ReferenceAck {
            put_id: 99,
            reference: id,
            status: AckStatus::Loaded,
            resident_bytes: 0,
        }]));
        assert_eq!(
            client.put_reference(5, Vec::new()),
            Err(ControlError::UnexpectedFrame(
                "ReferenceAck (foreign put id)"
            ))
        );
        // Hangup before the ack.
        let mut client = Client::new(Scripted::new(&[]));
        assert_eq!(
            client.put_reference(5, Vec::new()),
            Err(ControlError::Disconnected)
        );
    }

    #[test]
    fn client_submit_batch_for_sends_v2_and_maps_unknown_reference() {
        let id = sample_reference_id();
        // An Unknown ack echoing the batch id becomes the typed error.
        let mut client = Client::new(Scripted::new(&[ControlFrame::ReferenceAck {
            put_id: 11,
            reference: id,
            status: AckStatus::Unknown,
            resident_bytes: 0,
        }]));
        assert_eq!(
            client.submit_batch_for(11, vec![1, 2], id),
            Err(ControlError::UnknownReference(id))
        );
        let sent = client.into_inner().sent;
        assert_eq!(
            ControlFrame::read_from(&mut &sent[..])
                .expect("decodes")
                .expect("one frame"),
            ControlFrame::SubmitBatch {
                batch_id: 11,
                tdrb: vec![1, 2],
                reference: Some(id),
            }
        );
        // An Unknown ack with a foreign id is a protocol violation.
        let mut client = Client::new(Scripted::new(&[ControlFrame::ReferenceAck {
            put_id: 99,
            reference: id,
            status: AckStatus::Unknown,
            resident_bytes: 0,
        }]));
        assert_eq!(
            client.submit_batch_for(11, Vec::new(), id),
            Err(ControlError::UnexpectedFrame(
                "ReferenceAck (foreign batch id)"
            ))
        );
    }

    #[test]
    fn client_shutdown_handshake() {
        let client = Client::new(Scripted::new(&[ControlFrame::ShutdownAck]));
        let transport = client.shutdown().expect("acked");
        assert_eq!(
            ControlFrame::read_from(&mut &transport.sent[..])
                .expect("decodes")
                .expect("one frame"),
            ControlFrame::Shutdown
        );
        let client = Client::new(Scripted::new(&[]));
        assert_eq!(client.shutdown().err(), Some(ControlError::Disconnected));
    }
}
