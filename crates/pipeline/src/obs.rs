//! Observability: a zero-dependency metrics registry and event-trace ring
//! for the audit pipeline.
//!
//! The daemon audits machines an operator does not fully trust; this
//! module makes the daemon itself auditable. Three pieces:
//!
//! * **Handles** — [`Counter`], [`Gauge`], [`FloatGauge`], [`Histogram`]:
//!   lock-free atomic recording on the hot paths (one `fetch_add` per
//!   event, no mutex, no allocation). Registration is the only locked
//!   operation and happens once per name.
//! * **[`MetricsRegistry`] / [`MetricsSnapshot`]** — a named catalogue of
//!   handles and its point-in-time value capture. The snapshot stores
//!   every family in a `BTreeMap`, so iteration order — and therefore the
//!   TDRC `Stats` wire encoding built from it (`docs/FORMATS.md` §5.5) —
//!   is a pure function of the snapshot's *values*: equal snapshots
//!   serialize bit-identically, on any host, in any run.
//! * **[`TraceRing`]** — a bounded per-service ring of structured
//!   lifecycle events ([`TraceEvent`]: connection accept/close, batch
//!   submit/complete, worker park/unpark, retrain publish, errors) with
//!   monotonic nanosecond timestamps.
//!
//! ## The determinism boundary
//!
//! The pipeline pins verdict bytes and fleet summaries bit-identical
//! across transports and worker counts; metrics must not blur that line.
//! The rule: **counters derived from audited work** (sessions, batches,
//! frames, replayed cycles) are deterministic for a given workload, while
//! **wall-clock-valued metrics** (latency histograms, busy time,
//! `uptime_seconds`, trace-event timestamps) are measurement, not
//! evidence. Snapshots carry both, but determinism-pinned artifacts —
//! verdict frames, summaries, `BENCH_*.json` acceptance asserts — only
//! ever compare the deterministic counters; trace timestamps never leave
//! the process on the control plane at all (the ring is accessible only
//! in-process, e.g. [`crate::AuditService::trace_events`]).

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one; returns the new value (usable as a 1-based sequence id).
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, live connections, peak residency).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Raise the level by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lower the level by one. Callers order their inc/dec pairs so the
    /// level never goes below zero (e.g. a queue gauge is raised *before*
    /// enqueue and lowered *after* dequeue); a violation would wrap and
    /// is loud rather than silent.
    pub fn dec(&self) {
        let prev = self.0.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "gauge underflow");
    }

    /// Set the level outright.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the level to `v` if it is below (high-water tracking).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an `f64` (stored as its IEEE-754 bit pattern, so the
/// value read back is bit-identical to the value stored).
#[derive(Debug)]
pub struct FloatGauge(AtomicU64);

impl Default for FloatGauge {
    fn default() -> Self {
        FloatGauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl FloatGauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: `edges.len() + 1` buckets, where bucket `i`
/// counts observations `v <= edges[i]` (and the last bucket is overflow).
/// Recording is one atomic add on the bucket plus total/sum upkeep; the
/// edges are fixed at registration.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    buckets: Vec<AtomicU64>,
    total: AtomicU64,
    /// Running sum of observed values, as f64 bits updated by CAS — the
    /// histogram stays lock-free even for the floating-point accumulator.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(edges: &[f64]) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Histogram {
            edges: edges.to_vec(),
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let slot = self
            .edges
            .iter()
            .position(|&edge| v <= edge)
            .unwrap_or(self.edges.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Observations recorded so far.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            total: self.total.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry and snapshot
// ---------------------------------------------------------------------------

/// A named catalogue of metric handles.
///
/// `counter`/`gauge`/`float_gauge`/`histogram` get-or-register by name:
/// the first call creates the handle, later calls return the same one
/// (for histograms, with the same edges — re-registering with different
/// edges is a programming error and panics). Registration takes a mutex;
/// recording through the returned [`Arc`]'d handle never does.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    float_gauges: Mutex<BTreeMap<String, Arc<FloatGauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Get or register the float gauge `name`.
    pub fn float_gauge(&self, name: &str) -> Arc<FloatGauge> {
        let mut map = self.float_gauges.lock().expect("metrics registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(FloatGauge::default())),
        )
    }

    /// Get or register the histogram `name` with the given bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with different edges.
    pub fn histogram(&self, name: &str, edges: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics registry lock");
        let h = Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(edges))),
        );
        assert_eq!(
            h.edges, edges,
            "histogram {name:?} re-registered with different edges"
        );
        h
    }

    /// Capture every registered metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry lock")
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry lock")
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            float_gauges: self
                .float_gauges
                .lock()
                .expect("metrics registry lock")
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry lock")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// One histogram's captured state (see [`Histogram`]): `counts.len() ==
/// edges.len() + 1`, the last count being the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket edges, strictly increasing.
    pub edges: Vec<f64>,
    /// Per-bucket observation counts (one more than `edges`).
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// A point-in-time capture of a [`MetricsRegistry`].
///
/// Every family is a `BTreeMap`, so iteration — and the TDRC `Stats`
/// frame body built from it — is deterministically ordered by name: two
/// equal snapshots encode to bit-identical bytes. Values themselves split
/// into deterministic counts and wall-clock measurements; see the
/// [module docs](self) for which is which.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Float gauges by name.
    pub float_gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter `name`, or 0 if it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, or 0 if it was never registered.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The float gauge `name`, or 0.0 if it was never registered.
    pub fn float_gauge(&self, name: &str) -> f64 {
        self.float_gauges.get(name).copied().unwrap_or(0.0)
    }

    /// A multi-line human-readable rendering (the `tdrd --stats` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.float_gauges.is_empty() {
            out.push_str("float gauges:\n");
            for (name, v) in &self.float_gauges {
                let _ = writeln!(out, "  {name} = {v:.6}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: total {} sum {:.1} counts {:?} (edges {:?})",
                    h.total, h.sum, h.counts, h.edges
                );
            }
        }
        out
    }

    /// A one-line curated rendering (the `tdrd --stats-interval` line).
    pub fn render_line(&self) -> String {
        format!(
            "up={:.1}s conn_active={} conn_accepted={} conn_errors={} \
             sessions={}/{} batches={}/{} queue_depth={} in_flight={}",
            self.float_gauge("uptime_seconds"),
            self.gauge("conn_active"),
            self.counter("conn_accepted"),
            self.counter("conn_errors"),
            self.counter("sessions_audited"),
            self.counter("sessions_submitted"),
            self.counter("batches_completed"),
            self.counter("batches_submitted"),
            self.gauge("queue_depth"),
            self.gauge("in_flight_jobs"),
        )
    }
}

// ---------------------------------------------------------------------------
// Event-trace ring
// ---------------------------------------------------------------------------

/// A lifecycle event kind (see [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A TCP connection was accepted (`a` = connection id).
    ConnAccept,
    /// A serve loop ended cleanly (`a` = connection id).
    ConnClose,
    /// A serve loop ended with a typed error (`a` = connection id).
    ConnError,
    /// A connection exceeded the idle timeout (`a` = connection id).
    ConnIdleTimeout,
    /// A batch was submitted (`a` = batch sequence, `b` = sessions, 0
    /// when unknown at submission — streamed batches).
    BatchSubmit,
    /// A batch completed (`a` = batch sequence, `b` = sessions audited).
    BatchComplete,
    /// A batch ended in an ingest error (`a` = batch sequence).
    BatchError,
    /// A worker found the queue empty and blocked (`a` = worker index).
    WorkerPark,
    /// A parked worker woke with work or shutdown (`a` = worker index).
    WorkerUnpark,
    /// Cross-batch retraining published a new battery generation
    /// (`a` = generation, `b` = clean traces absorbed).
    RetrainPublish,
    /// An accept was shed at the connection cap (`a` = connections
    /// active at the shed, `b` = the cap).
    ConnShed,
    /// A submission was refused by a tenant quota (`a` = tenant id,
    /// `b` = the refused batch id).
    QuotaReject,
}

/// One structured lifecycle event.
///
/// `at_nanos` is monotonic time since the owning service's construction —
/// wall-clock-domain measurement that never enters a determinism-pinned
/// artifact (the ring is in-process only; the `Stats` wire frame carries
/// the metrics snapshot, not trace events).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// 1-based sequence number (gapless across the service lifetime, so
    /// `seq` minus the ring length reveals how many events were evicted).
    pub seq: u64,
    /// Monotonic nanoseconds since service construction.
    pub at_nanos: u64,
    /// What happened.
    pub kind: TraceKind,
    /// First argument (meaning per [`TraceKind`]).
    pub a: u64,
    /// Second argument (meaning per [`TraceKind`]).
    pub b: u64,
}

#[derive(Debug, Default)]
struct RingState {
    buf: VecDeque<TraceEvent>,
    next_seq: u64,
}

/// A bounded ring of [`TraceEvent`]s: recording evicts the oldest event
/// once the capacity is reached, so a long-lived daemon holds the most
/// recent window, never an unbounded log.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    epoch: Instant,
    state: Mutex<RingState>,
}

/// Default [`TraceRing`] capacity.
pub const DEFAULT_TRACE_CAP: usize = 1024;

impl TraceRing {
    /// A ring holding at most `cap` events, timestamped relative to now.
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            epoch: Instant::now(),
            state: Mutex::new(RingState::default()),
        }
    }

    /// Record one event.
    pub fn record(&self, kind: TraceKind, a: u64, b: u64) {
        let at_nanos = self.epoch.elapsed().as_nanos() as u64;
        let mut state = self.state.lock().expect("trace ring lock");
        state.next_seq += 1;
        let seq = state.next_seq;
        if state.buf.len() == self.cap {
            state.buf.pop_front();
        }
        state.buf.push_back(TraceEvent {
            seq,
            at_nanos,
            kind,
            a,
            b,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state
            .lock()
            .expect("trace ring lock")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Events recorded over the ring's lifetime (≥ retained count).
    pub fn recorded(&self) -> u64 {
        self.state.lock().expect("trace ring lock").next_seq
    }
}

// ---------------------------------------------------------------------------
// Byte-counting transport wrappers
// ---------------------------------------------------------------------------

/// A `Read` adapter adding every byte read to a [`Counter`]
/// (`bytes_in` on the daemon's connections).
#[derive(Debug)]
pub struct CountingRead<R> {
    inner: R,
    counter: Arc<Counter>,
}

impl<R: Read> CountingRead<R> {
    /// Wrap `inner`, counting into `counter`.
    pub fn new(inner: R, counter: Arc<Counter>) -> Self {
        CountingRead { inner, counter }
    }
}

impl<R: Read> Read for CountingRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.counter.add(n as u64);
        Ok(n)
    }
}

/// A `Write` adapter adding every byte written to a [`Counter`]
/// (`bytes_out` on the daemon's connections).
#[derive(Debug)]
pub struct CountingWrite<W> {
    inner: W,
    counter: Arc<Counter>,
}

impl<W: Write> CountingWrite<W> {
    /// Wrap `inner`, counting into `counter`.
    pub fn new(inner: W, counter: Arc<Counter>) -> Self {
        CountingWrite { inner, counter }
    }
}

impl<W: Write> Write for CountingWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.counter.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// The service's typed metric set
// ---------------------------------------------------------------------------

/// Upper edges (µs) for the per-verdict wall-clock latency histogram.
pub const VERDICT_LATENCY_EDGES_US: [f64; 10] = [
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0,
];

/// Upper edges for the sessions-per-batch histogram.
pub const BATCH_SESSIONS_EDGES: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1_024.0];

/// Upper edges for the frames-per-connection histogram.
pub const CONN_FRAMES_EDGES: [f64; 6] = [1.0, 2.0, 4.0, 16.0, 64.0, 256.0];

/// Every metric an [`crate::AuditService`] records, pre-registered as
/// typed handles (so the hot paths never take the registry lock), plus
/// the service's [`TraceRing`].
///
/// One instance per service, shared by its workers, feeders, the serve
/// loops of every connection, and the TCP front end — the single source
/// of truth behind [`crate::AuditService::sessions_audited`],
/// [`crate::net::DaemonReport`], and the TDRC `Stats` frame.
#[derive(Debug)]
pub struct ServiceMetrics {
    registry: MetricsRegistry,
    trace: TraceRing,
    epoch: Instant,
    uptime_seconds: Arc<FloatGauge>,

    // service.rs — submission and audit progress
    pub(crate) sessions_submitted: Arc<Counter>,
    pub(crate) sessions_audited: Arc<Counter>,
    pub(crate) sessions_cancelled: Arc<Counter>,
    pub(crate) batches_submitted: Arc<Counter>,
    pub(crate) batches_completed: Arc<Counter>,
    pub(crate) batch_errors: Arc<Counter>,
    pub(crate) replayed_cycles: Arc<Counter>,
    pub(crate) worker_busy_nanos: Arc<Counter>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) in_flight_jobs: Arc<Gauge>,
    pub(crate) residency_peak: Arc<Gauge>,
    pub(crate) verdict_latency_us: Arc<Histogram>,
    pub(crate) batch_sessions: Arc<Histogram>,

    // retraining
    pub(crate) retrain_generations: Arc<Counter>,
    pub(crate) retrain_drift_mean: Arc<FloatGauge>,
    pub(crate) retrain_drift_max: Arc<FloatGauge>,

    // net.rs — connection lifecycle
    pub(crate) conn_accepted: Arc<Counter>,
    pub(crate) conn_active: Arc<Gauge>,
    pub(crate) conn_errors: Arc<Counter>,
    pub(crate) conn_idle_timeout: Arc<Counter>,
    pub(crate) conn_shed: Arc<Counter>,
    pub(crate) conn_reaped: Arc<Counter>,
    pub(crate) bytes_in: Arc<Counter>,
    pub(crate) bytes_out: Arc<Counter>,
    pub(crate) conn_frames: Arc<Histogram>,

    // control.rs serve loop — frame traffic
    pub(crate) frames_in: Arc<Counter>,
    pub(crate) frames_out: Arc<Counter>,
    pub(crate) frames_in_submit_batch: Arc<Counter>,
    pub(crate) frames_in_stats_request: Arc<Counter>,
    pub(crate) frames_in_shutdown: Arc<Counter>,
    pub(crate) frames_in_put_reference: Arc<Counter>,
    pub(crate) frames_in_put_battery: Arc<Counter>,
    pub(crate) frames_out_verdict: Arc<Counter>,
    pub(crate) frames_out_summary: Arc<Counter>,
    pub(crate) frames_out_error: Arc<Counter>,
    pub(crate) frames_out_shutdown_ack: Arc<Counter>,
    pub(crate) frames_out_stats: Arc<Counter>,
    pub(crate) frames_out_busy: Arc<Counter>,
    pub(crate) frames_out_reference_ack: Arc<Counter>,
    pub(crate) frames_out_battery_ack: Arc<Counter>,
    pub(crate) quota_rejections: Arc<Counter>,
    pub(crate) control_errors: Arc<Counter>,

    // registry.rs — reference-program registry
    pub(crate) registry_loads: Arc<Counter>,
    pub(crate) registry_verify_failures: Arc<Counter>,
    pub(crate) registry_hits: Arc<Counter>,
    pub(crate) registry_misses: Arc<Counter>,
    pub(crate) registry_evictions: Arc<Counter>,
    pub(crate) registry_resident_bytes: Arc<Gauge>,
    pub(crate) registry_references: Arc<Gauge>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// A fresh metric set with every service metric pre-registered (so a
    /// snapshot names them all from the start, at zero).
    pub fn new() -> Self {
        let r = MetricsRegistry::new();
        ServiceMetrics {
            uptime_seconds: r.float_gauge("uptime_seconds"),
            sessions_submitted: r.counter("sessions_submitted"),
            sessions_audited: r.counter("sessions_audited"),
            sessions_cancelled: r.counter("sessions_cancelled"),
            batches_submitted: r.counter("batches_submitted"),
            batches_completed: r.counter("batches_completed"),
            batch_errors: r.counter("batch_errors"),
            replayed_cycles: r.counter("replayed_cycles"),
            worker_busy_nanos: r.counter("worker_busy_nanos"),
            queue_depth: r.gauge("queue_depth"),
            in_flight_jobs: r.gauge("in_flight_jobs"),
            residency_peak: r.gauge("residency_peak"),
            verdict_latency_us: r.histogram("verdict_latency_us", &VERDICT_LATENCY_EDGES_US),
            batch_sessions: r.histogram("batch_sessions", &BATCH_SESSIONS_EDGES),
            retrain_generations: r.counter("retrain_generations"),
            retrain_drift_mean: r.float_gauge("retrain_drift_mean"),
            retrain_drift_max: r.float_gauge("retrain_drift_max"),
            conn_accepted: r.counter("conn_accepted"),
            conn_active: r.gauge("conn_active"),
            conn_errors: r.counter("conn_errors"),
            conn_idle_timeout: r.counter("conn_idle_timeout"),
            conn_shed: r.counter("conn_shed"),
            conn_reaped: r.counter("conn_reaped"),
            bytes_in: r.counter("bytes_in"),
            bytes_out: r.counter("bytes_out"),
            conn_frames: r.histogram("conn_frames", &CONN_FRAMES_EDGES),
            frames_in: r.counter("frames_in"),
            frames_out: r.counter("frames_out"),
            frames_in_submit_batch: r.counter("frames_in_submit_batch"),
            frames_in_stats_request: r.counter("frames_in_stats_request"),
            frames_in_shutdown: r.counter("frames_in_shutdown"),
            frames_in_put_reference: r.counter("frames_in_put_reference"),
            frames_in_put_battery: r.counter("frames_in_put_battery"),
            frames_out_verdict: r.counter("frames_out_verdict"),
            frames_out_summary: r.counter("frames_out_summary"),
            frames_out_error: r.counter("frames_out_error"),
            frames_out_shutdown_ack: r.counter("frames_out_shutdown_ack"),
            frames_out_stats: r.counter("frames_out_stats"),
            frames_out_busy: r.counter("frames_out_busy"),
            frames_out_reference_ack: r.counter("frames_out_reference_ack"),
            frames_out_battery_ack: r.counter("frames_out_battery_ack"),
            quota_rejections: r.counter("quota_rejections"),
            control_errors: r.counter("control_errors"),
            registry_loads: r.counter("registry_loads"),
            registry_verify_failures: r.counter("registry_verify_failures"),
            registry_hits: r.counter("registry_hits"),
            registry_misses: r.counter("registry_misses"),
            registry_evictions: r.counter("registry_evictions"),
            registry_resident_bytes: r.gauge("registry_resident_bytes"),
            registry_references: r.gauge("registry_references"),
            trace: TraceRing::new(DEFAULT_TRACE_CAP),
            epoch: Instant::now(),
            registry: r,
        }
    }

    /// The underlying registry (for ad-hoc, dynamically named metrics —
    /// e.g. the per-variant `control_err_*` tallies).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Record a lifecycle event into the service's trace ring.
    pub fn trace(&self, kind: TraceKind, a: u64, b: u64) {
        self.trace.record(kind, a, b);
    }

    /// The retained trace events, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    /// Capture every metric, stamping `uptime_seconds` at capture time.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.uptime_seconds.set(self.epoch.elapsed().as_secs_f64());
        self.registry.snapshot()
    }

    /// Tally a typed control error: the `control_errors` total plus a
    /// per-variant `control_err_*` counter (registered on first use, so
    /// snapshots only name variants that actually occurred).
    pub(crate) fn record_control_error(&self, err: &crate::ControlError) {
        self.control_errors.inc();
        self.registry.counter(err.metric_name()).inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_float_gauges_record() {
        let c = Counter::default();
        assert_eq!(c.inc(), 1);
        assert_eq!(c.inc(), 2);
        c.add(40);
        assert_eq!(c.get(), 42);

        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set_max(10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
        g.set(3);
        assert_eq!(g.get(), 3);

        let f = FloatGauge::default();
        f.set(-0.0);
        assert_eq!(f.get().to_bits(), (-0.0f64).to_bits(), "bit-exact");
        f.set(1.25);
        assert_eq!(f.get(), 1.25);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0, 5_000.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(
            snap.counts,
            vec![2, 1, 1, 2],
            "v <= edge buckets + overflow"
        );
        assert_eq!(snap.total, 6);
        assert!((snap.sum - 5_556.5).abs() < 1e-9);
        assert_eq!(snap.edges, vec![1.0, 10.0, 100.0]);
    }

    #[test]
    fn registry_get_or_register_returns_the_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1, "same underlying counter");
        assert!(Arc::ptr_eq(&a, &b));
        let h1 = r.histogram("h", &[1.0, 2.0]);
        let h2 = r.histogram("h", &[1.0, 2.0]);
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    #[should_panic(expected = "different edges")]
    fn histogram_edge_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.histogram("h", &[1.0]);
        r.histogram("h", &[2.0]);
    }

    #[test]
    fn snapshot_is_ordered_and_equal_across_registration_order() {
        // Two registries with the same metrics registered in opposite
        // orders produce equal snapshots — BTreeMap ordering, not
        // registration order, defines the snapshot.
        let a = MetricsRegistry::new();
        a.counter("alpha").add(1);
        a.counter("beta").add(2);
        a.gauge("g").set(7);
        let b = MetricsRegistry::new();
        b.gauge("g").set(7);
        b.counter("beta").add(2);
        b.counter("alpha").add(1);
        assert_eq!(a.snapshot(), b.snapshot());
        let snap = a.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert!(names.windows(2).all(|w| w[0] < w[1]), "sorted by name");
    }

    #[test]
    fn trace_ring_is_bounded_and_keeps_the_newest_window() {
        let ring = TraceRing::new(4);
        for k in 0..10u64 {
            ring.record(TraceKind::BatchSubmit, k, 0);
        }
        let events = ring.events();
        assert_eq!(events.len(), 4);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "oldest evicted, newest retained, gapless seq"
        );
        assert!(events.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
    }

    #[test]
    fn counting_wrappers_tally_bytes() {
        let c_in = Arc::new(Counter::default());
        let c_out = Arc::new(Counter::default());
        let mut reader = CountingRead::new(&b"hello world"[..], Arc::clone(&c_in));
        let mut buf = [0u8; 5];
        reader.read_exact(&mut buf).expect("read");
        assert_eq!(c_in.get(), 5);
        let mut sink = Vec::new();
        let mut writer = CountingWrite::new(&mut sink, Arc::clone(&c_out));
        writer.write_all(b"abc").expect("write");
        writer.flush().expect("flush");
        assert_eq!(c_out.get(), 3);
        assert_eq!(sink, b"abc");
    }

    #[test]
    fn service_metrics_snapshot_names_every_metric_at_zero() {
        let m = ServiceMetrics::new();
        let snap = m.snapshot();
        for name in [
            "sessions_submitted",
            "sessions_audited",
            "batches_submitted",
            "batches_completed",
            "conn_accepted",
            "conn_errors",
            "conn_idle_timeout",
            "conn_shed",
            "quota_rejections",
            "frames_out_busy",
            "bytes_in",
            "bytes_out",
            "frames_in",
            "frames_out",
            "control_errors",
            "replayed_cycles",
        ] {
            assert!(
                snap.counters.contains_key(name),
                "{name} pre-registered at zero"
            );
            assert_eq!(snap.counter(name), 0);
        }
        assert!(snap.gauges.contains_key("queue_depth"));
        assert!(snap.histograms.contains_key("verdict_latency_us"));
        assert!(snap.float_gauges.contains_key("uptime_seconds"));
        assert!(snap.float_gauge("uptime_seconds") >= 0.0);
        // The rendered forms mention the load-bearing counters.
        assert!(snap.render().contains("sessions_audited"));
        assert!(snap.render_line().contains("conn_active=0"));
    }
}
