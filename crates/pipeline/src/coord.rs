//! TDRC coordinator: shard the audit fleet across daemons.
//!
//! A single `tdrd` scales to the cores of one machine; the audit itself
//! is embarrassingly parallel across sessions, so the next step is
//! horizontal — many daemons, one front door. [`serve_coordinator`] is
//! that front door: a thin TDRC-speaking router that accepts the
//! **unchanged** client protocol, shards each `SubmitBatch`'s sessions
//! across N backend daemons by session id, and merges the per-backend
//! verdict streams back into one response stream whose
//! [`FleetSummary`] is byte-identical to a single-daemon audit of the
//! same batch.
//!
//! ## Why the merge can promise byte-identity
//!
//! Two properties, both already pinned by the test suite, make the
//! coordinator deterministic *by construction* rather than by care:
//!
//! * a session's verdict depends only on its log, its observed timing,
//!   and the batch seed — [`crate::AuditConfig::session_seed`] mixes the
//!   session *id*, not its batch position, so resharding cannot perturb
//!   any verdict bit;
//! * [`FleetSummary::from_verdicts`] re-sorts by session id before
//!   accumulating, so the summary is a pure, order-insensitive function
//!   of the verdict *set* — it cannot observe which daemon produced
//!   which verdict, or in what order shards completed.
//!
//! The normative routing/merge rules live in `docs/FORMATS.md` §8; the
//! determinism boundary (what is bit-pinned vs. what is topology-
//! dependent, like the `Summary` frame's `workers` field) is drawn in
//! `docs/ARCHITECTURE.md` ("Fleet topology").
//!
//! ## Failure handling
//!
//! A backend that dies mid-batch (dial failure, disconnect, truncated
//! frame) surfaces as a typed [`ControlError`] inside the coordinator;
//! the dead backend's shard — and only that shard — is resubmitted to a
//! survivor (bounded: each surviving backend is tried at most once).
//! Partial verdicts from the dead backend are discarded wholesale, so
//! the retried shard cannot double-report a session. With no survivors
//! left the client receives an in-band [`ControlFrame::Error`] naming
//! the dead backend; the coordinator — like a daemon refusing one batch
//! — keeps serving.
//!
//! ## Fleet-consistent batteries
//!
//! [`ControlFrame::PutBattery`] fans out to every backend, so one
//! retrain publishes one new generation everywhere. Backends under a
//! coordinator should **not** run `--retrain`: local absorption would
//! let each shard's baselines drift apart, and sharding would then
//! change scores. The coordinator is the only writer.

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use jbc::ReferenceId;

use crate::control::{
    AckStatus, BatchOutcome, BatteryOutcome, Client, ControlError, ControlFrame, PutOutcome,
};
use crate::ingest;
use crate::obs::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
use crate::verdict::{AuditVerdict, FleetSummary};
use crate::AuditJob;

/// Per-backend routing tallies, all exported through the Stats plane as
/// `coord_backend_{i}_*`.
struct BackendCounters {
    batches: Arc<Counter>,
    sessions: Arc<Counter>,
    failures: Arc<Counter>,
}

/// The coordinator's own metric set. Connection-lifecycle names match
/// the daemon's (`conn_*`) so fleet tooling reads both alike; routing
/// and retry tallies are `coord_*`.
struct CoordMetrics {
    conn_accepted: Arc<Counter>,
    conn_active: Arc<Gauge>,
    conn_errors: Arc<Counter>,
    conn_reaped: Arc<Counter>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    batches_routed: Arc<Counter>,
    sessions_routed: Arc<Counter>,
    batch_errors: Arc<Counter>,
    retries: Arc<Counter>,
    backend_failures: Arc<Counter>,
    reference_puts: Arc<Counter>,
    battery_puts: Arc<Counter>,
    per_backend: Vec<BackendCounters>,
}

impl CoordMetrics {
    fn new(registry: &MetricsRegistry, n_backends: usize) -> Self {
        CoordMetrics {
            conn_accepted: registry.counter("conn_accepted"),
            conn_active: registry.gauge("conn_active"),
            conn_errors: registry.counter("conn_errors"),
            conn_reaped: registry.counter("conn_reaped"),
            frames_in: registry.counter("frames_in"),
            frames_out: registry.counter("frames_out"),
            batches_routed: registry.counter("coord_batches_routed"),
            sessions_routed: registry.counter("coord_sessions_routed"),
            batch_errors: registry.counter("coord_batch_errors"),
            retries: registry.counter("coord_retries"),
            backend_failures: registry.counter("coord_backend_failures"),
            reference_puts: registry.counter("coord_reference_puts"),
            battery_puts: registry.counter("coord_battery_puts"),
            per_backend: (0..n_backends)
                .map(|i| BackendCounters {
                    batches: registry.counter(&format!("coord_backend_{i}_batches")),
                    sessions: registry.counter(&format!("coord_backend_{i}_sessions")),
                    failures: registry.counter(&format!("coord_backend_{i}_failures")),
                })
                .collect(),
        }
    }
}

/// Accept/connection bookkeeping plus everything a connection thread
/// needs: the backend address list and the metric set.
struct CoordShared {
    backends: Vec<String>,
    registry: MetricsRegistry,
    metrics: CoordMetrics,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A running TDRC coordinator: an accept loop plus one router thread per
/// client connection, each holding its own connection to every backend.
///
/// Built by [`serve_coordinator`]. Dropping the coordinator performs the
/// same graceful shutdown as [`shutdown`](Self::shutdown) (minus
/// returning the report).
#[derive(Debug)]
pub struct Coordinator {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<CoordShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for CoordShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordShared")
            .field("backends", &self.backends)
            .finish_non_exhaustive()
    }
}

/// What a coordinator hands back at [`Coordinator::shutdown`]: final
/// tallies, captured after every connection thread joined.
#[derive(Debug)]
pub struct CoordReport {
    /// Client connections accepted over the coordinator's lifetime.
    pub connections_accepted: u64,
    /// Client connections that ended with a protocol or transport error.
    pub connection_errors: u64,
    /// Every coordinator metric at shutdown, name-ordered (what a
    /// [`ControlFrame::Stats`] response would have carried).
    pub snapshot: MetricsSnapshot,
}

/// Serve the TDRC control plane as a coordinator: accept client
/// connections on `listener` and route each one's traffic across the
/// `backends` (TDRC daemon addresses, dialed per client connection).
///
/// Clients speak the unchanged single-daemon protocol; see the module
/// docs for the routing, merge, and failure rules. At least one backend
/// address is required.
pub fn serve_coordinator(listener: TcpListener, backends: Vec<String>) -> io::Result<Coordinator> {
    if backends.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a coordinator needs at least one backend address",
        ));
    }
    let addr = listener.local_addr()?;
    let registry = MetricsRegistry::new();
    let metrics = CoordMetrics::new(&registry, backends.len());
    let shared = Arc::new(CoordShared {
        backends,
        registry,
        metrics,
        conns: Mutex::new(Vec::new()),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("tdrd-coord-accept".to_string())
            .spawn(move || accept_loop(listener, shared, stop))?
    };
    Ok(Coordinator {
        addr,
        stop,
        shared,
        accept_thread: Some(accept_thread),
    })
}

impl Coordinator {
    /// The address the coordinator is accepting on (resolves `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backend addresses this coordinator routes across, in shard
    /// order (`session_id mod N` indexes this slice).
    pub fn backends(&self) -> &[String] {
        &self.shared.backends
    }

    /// Capture every coordinator metric as a deterministic, name-ordered
    /// snapshot — the payload of its [`ControlFrame::Stats`] responses.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.registry.snapshot()
    }

    /// Graceful shutdown: stop accepting, wait for every in-flight
    /// client connection to end, and return the final tallies. Backend
    /// connections close with their client connections.
    pub fn shutdown(mut self) -> CoordReport {
        self.shutdown_inner();
        let snapshot = self.shared.registry.snapshot();
        CoordReport {
            connections_accepted: snapshot.counter("conn_accepted"),
            connection_errors: snapshot.counter("conn_errors"),
            snapshot,
        }
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // `accept()` has no timeout; wake it with a throwaway connection
        // (same discipline as `net::TcpDaemon`).
        let wake_addr = if self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            SocketAddr::new(loopback, self.addr.port())
        } else {
            self.addr
        };
        let _ = TcpStream::connect(wake_addr);
        let _ = accept.join();
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for handle in conns {
            let _ = handle.join();
            self.shared.metrics.conn_reaped.inc();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<CoordShared>, stop: Arc<AtomicBool>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            drop(stream);
            return;
        }
        let conn_id = shared.metrics.conn_accepted.inc();
        shared.metrics.conn_active.inc();
        reap_finished(&shared);
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("tdrd-coord-conn-{conn_id}"))
                .spawn(move || serve_connection(&shared, stream))
        };
        match handle {
            Ok(handle) => shared.conns.lock().expect("conns lock").push(handle),
            Err(_) => {
                shared.metrics.conn_active.dec();
                shared.metrics.conn_errors.inc();
            }
        }
    }
}

/// Join router threads that already finished (same bounded-backlog
/// discipline as `net::reap_finished`: called on accept and as each
/// connection exits, remainder at shutdown, every join counted).
fn reap_finished(shared: &CoordShared) {
    let mut conns = shared.conns.lock().expect("conns lock");
    let mut live = Vec::with_capacity(conns.len());
    for handle in conns.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
            shared.metrics.conn_reaped.inc();
        } else {
            live.push(handle);
        }
    }
    *conns = live;
}

fn serve_connection(shared: &CoordShared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let outcome = route_connection(shared, &stream);
    if outcome.is_err() {
        shared.metrics.conn_errors.inc();
    }
    shared.metrics.conn_active.dec();
    let _ = stream.shutdown(Shutdown::Both);
    reap_finished(shared);
}

/// One shard's routing state: the original submission indexes and jobs
/// destined for one backend.
struct Shard {
    indexes: Vec<usize>,
    jobs: Vec<AuditJob>,
}

/// How a shard submission failed, classified for the routing policy.
enum ShardFail {
    /// The backend is gone (dial/transport failure): mark it dead and
    /// retry the shard on a survivor.
    Dead(ControlError),
    /// The backend does not hold the named reference — answered to the
    /// client in-band as an `Unknown` ack, exactly like a single daemon.
    Unknown(ReferenceId),
    /// A refusal that travels to the client as an in-band `Error` frame
    /// (reference thrash, a backend quota, a backend-side batch error);
    /// the connection keeps serving.
    InBand(String),
    /// A protocol violation on the backend link — fatal to this client
    /// connection, like protocol garbage on a daemon connection.
    Fatal(ControlError),
}

fn classify(e: ControlError) -> ShardFail {
    match e {
        ControlError::Io(..) | ControlError::Disconnected | ControlError::Truncated => {
            ShardFail::Dead(e)
        }
        ControlError::UnknownReference(id) => ShardFail::Unknown(id),
        ControlError::ReferenceThrash(_)
        | ControlError::Busy { .. }
        | ControlError::QuotaExceeded { .. }
        | ControlError::IdleTimeout => ShardFail::InBand(e.to_string()),
        other => ShardFail::Fatal(other),
    }
}

/// Dial every backend. A backend that refuses the dial starts the
/// connection dead (counted); submissions route around it.
fn dial_backends(shared: &CoordShared) -> Vec<Option<Client<TcpStream>>> {
    shared
        .backends
        .iter()
        .enumerate()
        .map(|(i, addr)| match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                Some(Client::new(stream))
            }
            Err(_) => {
                shared.metrics.backend_failures.inc();
                shared.metrics.per_backend[i].failures.inc();
                None
            }
        })
        .collect()
}

/// Submit one shard to one backend, re-encoding its jobs as a
/// self-contained TDRB. When the batch names a registered reference and
/// this connection has seen its container, the bounded re-put helper
/// covers an eviction race on the backend.
fn submit_shard(
    client: &mut Client<TcpStream>,
    batch_id: u64,
    jobs: &[AuditJob],
    reference: Option<ReferenceId>,
    containers: &BTreeMap<ReferenceId, Vec<u8>>,
) -> Result<BatchOutcome, ControlError> {
    let tdrb = ingest::encode_batch(jobs);
    match reference {
        None => client.submit_batch(batch_id, tdrb),
        Some(id) => match containers.get(&id) {
            Some(tdrp) => client.submit_batch_reput(batch_id, tdrb, id, tdrp),
            None => client.submit_batch_for(batch_id, tdrb, id),
        },
    }
}

/// The per-connection router loop: read client frames, fan out to the
/// backends, merge responses. Returns `Err` only for failures that end
/// this client connection (client-side transport loss, protocol
/// garbage); batch-scoped failures are answered in-band.
fn route_connection(shared: &CoordShared, stream: &TcpStream) -> Result<(), ControlError> {
    let metrics = &shared.metrics;
    let mut reader = stream;
    let mut writer = BufWriter::new(stream);
    let mut backends = dial_backends(shared);
    // Containers registered through this connection, kept for the
    // bounded re-put recovery when a backend evicts one mid-stream.
    let mut containers: BTreeMap<ReferenceId, Vec<u8>> = BTreeMap::new();
    loop {
        let frame = match ControlFrame::read_from(&mut reader) {
            Ok(None) => return Ok(()), // client hung up cleanly
            Ok(Some(frame)) => frame,
            Err(e) => return Err(e),
        };
        metrics.frames_in.inc();
        match frame {
            ControlFrame::SubmitBatch {
                batch_id,
                tdrb,
                reference,
            } => {
                route_batch(
                    shared,
                    &mut backends,
                    &containers,
                    &mut writer,
                    batch_id,
                    &tdrb,
                    reference,
                )?;
            }
            ControlFrame::PutReference { put_id, tdrp } => {
                metrics.reference_puts.inc();
                let ack = fan_out_reference(shared, &mut backends, put_id, &tdrp);
                if let ControlFrame::ReferenceAck {
                    reference,
                    status: AckStatus::Loaded | AckStatus::AlreadyResident,
                    ..
                } = &ack
                {
                    containers.insert(*reference, tdrp);
                }
                write_frame(metrics, &mut writer, &ack)?;
            }
            ControlFrame::PutBattery { put_id, json } => {
                metrics.battery_puts.inc();
                let ack = fan_out_battery(shared, &mut backends, put_id, &json);
                write_frame(metrics, &mut writer, &ack)?;
            }
            ControlFrame::StatsRequest => {
                write_frame(
                    metrics,
                    &mut writer,
                    &ControlFrame::Stats {
                        snapshot: shared.registry.snapshot(),
                    },
                )?;
            }
            ControlFrame::Shutdown => {
                let write = write_frame(metrics, &mut writer, &ControlFrame::ShutdownAck);
                // Close the backend links gracefully, best-effort — a
                // dead backend is already None.
                for client in backends.iter_mut().filter_map(Option::take) {
                    let _ = client.shutdown();
                }
                return write;
            }
            other => return Err(ControlError::UnexpectedFrame(other.kind_name())),
        }
    }
}

fn write_frame<W: Write>(
    metrics: &CoordMetrics,
    writer: &mut W,
    frame: &ControlFrame,
) -> Result<(), ControlError> {
    frame.write_to(writer)?;
    writer.flush().map_err(ControlError::from_io)?;
    metrics.frames_out.inc();
    Ok(())
}

/// Route one `SubmitBatch`: decode, shard by `session_id mod N`, submit
/// shards in parallel, retry dead backends' shards on survivors, merge.
fn route_batch<W: Write>(
    shared: &CoordShared,
    backends: &mut [Option<Client<TcpStream>>],
    containers: &BTreeMap<ReferenceId, Vec<u8>>,
    writer: &mut W,
    batch_id: u64,
    tdrb: &[u8],
    reference: Option<ReferenceId>,
) -> Result<(), ControlError> {
    let metrics = &shared.metrics;
    metrics.batches_routed.inc();
    // The whole TDRB is validated before any routing: a malformed batch
    // is answered with an `Error` frame and zero verdicts (a single
    // daemon streams verdicts for the valid prefix first — §8.2 draws
    // this boundary).
    let jobs = match ingest::decode_batch(tdrb) {
        Ok(jobs) => jobs,
        Err(e) => {
            metrics.batch_errors.inc();
            return write_frame(
                metrics,
                writer,
                &ControlFrame::Error {
                    batch_id,
                    message: e.to_string(),
                },
            );
        }
    };
    metrics.sessions_routed.add(jobs.len() as u64);
    let n = backends.len();
    let mut shards: Vec<Shard> = (0..n)
        .map(|_| Shard {
            indexes: Vec::new(),
            jobs: Vec::new(),
        })
        .collect();
    for (index, job) in jobs.into_iter().enumerate() {
        let home = (job.session_id % n as u64) as usize;
        shards[home].indexes.push(index);
        shards[home].jobs.push(job);
    }

    // Parallel fan-out: every live backend serves its shard at once, so
    // coordinator latency is the slowest shard, not the sum.
    let mut results: Vec<Option<Result<BatchOutcome, ControlError>>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        for ((backend, shard), slot) in backends.iter_mut().zip(&shards).zip(results.iter_mut()) {
            if shard.jobs.is_empty() {
                continue;
            }
            let Some(client) = backend.as_mut() else {
                continue; // already dead: handled by the retry pass
            };
            scope.spawn(move || {
                *slot = Some(submit_shard(
                    client,
                    batch_id,
                    &shard.jobs,
                    reference,
                    containers,
                ));
            });
        }
    });

    // Collect, marking dead backends and queueing their shards.
    let mut outcomes: Vec<Option<BatchOutcome>> = (0..n).map(|_| None).collect();
    let mut needs_retry: Vec<usize> = Vec::new();
    for i in 0..n {
        if shards[i].jobs.is_empty() {
            continue;
        }
        match results[i].take() {
            Some(Ok(outcome)) => {
                metrics.per_backend[i].batches.inc();
                metrics.per_backend[i]
                    .sessions
                    .add(shards[i].jobs.len() as u64);
                outcomes[i] = Some(outcome);
            }
            Some(Err(e)) => match classify(e) {
                ShardFail::Dead(_) => {
                    backends[i] = None;
                    metrics.backend_failures.inc();
                    metrics.per_backend[i].failures.inc();
                    needs_retry.push(i);
                }
                fail => return answer_shard_fail(shared, writer, batch_id, fail),
            },
            None => needs_retry.push(i), // backend was dead before the batch
        }
    }

    // Bounded retry: each dead backend's shard moves, whole, to the
    // first survivor that takes it. Partial verdicts from the dead
    // backend were discarded above, so no session can double-report.
    for i in needs_retry {
        let mut served = false;
        for (j, backend) in backends.iter_mut().enumerate() {
            let Some(client) = backend.as_mut() else {
                continue;
            };
            metrics.retries.inc();
            match submit_shard(client, batch_id, &shards[i].jobs, reference, containers) {
                Ok(outcome) => {
                    metrics.per_backend[j].batches.inc();
                    metrics.per_backend[j]
                        .sessions
                        .add(shards[i].jobs.len() as u64);
                    outcomes[i] = Some(outcome);
                    served = true;
                    break;
                }
                Err(e) => match classify(e) {
                    ShardFail::Dead(_) => {
                        *backend = None;
                        metrics.backend_failures.inc();
                        metrics.per_backend[j].failures.inc();
                    }
                    fail => return answer_shard_fail(shared, writer, batch_id, fail),
                },
            }
        }
        if !served {
            metrics.batch_errors.inc();
            return write_frame(
                metrics,
                writer,
                &ControlFrame::Error {
                    batch_id,
                    message: format!(
                        "backend {} died mid-batch and no survivor could take its shard",
                        shared.backends[i]
                    ),
                },
            );
        }
    }

    // Merge: reunite the shard outcomes under the original submission
    // indexes and re-derive the summary from the union — the pure
    // order-insensitive aggregation the module docs lean on.
    let mut indexed: Vec<(usize, AuditVerdict)> = Vec::new();
    let mut workers = 0u64;
    let mut peak_resident = 0u64;
    for (i, slot) in outcomes.into_iter().enumerate() {
        let Some(outcome) = slot else { continue };
        match outcome.result {
            Ok(summary) => {
                workers += summary.workers;
                peak_resident = peak_resident.max(summary.peak_resident);
            }
            Err(message) => {
                // The backend audited the shard and reported an in-band
                // batch error; relay it (the shard TDRB came from our own
                // encoder, so this is a backend-side failure, not input).
                metrics.batch_errors.inc();
                return write_frame(metrics, writer, &ControlFrame::Error { batch_id, message });
            }
        }
        if outcome.verdicts.len() != shards[i].indexes.len() {
            metrics.batch_errors.inc();
            return write_frame(
                metrics,
                writer,
                &ControlFrame::Error {
                    batch_id,
                    message: format!(
                        "backend returned {} verdicts for a {}-session shard",
                        outcome.verdicts.len(),
                        shards[i].indexes.len()
                    ),
                },
            );
        }
        indexed.extend(shards[i].indexes.iter().copied().zip(outcome.verdicts));
    }
    indexed.sort_by_key(|&(index, _)| index);
    for (index, verdict) in &indexed {
        ControlFrame::Verdict {
            batch_id,
            index: *index as u64,
            verdict: verdict.clone(),
        }
        .write_to(writer)?;
        metrics.frames_out.inc();
    }
    let verdicts: Vec<AuditVerdict> = indexed.into_iter().map(|(_, v)| v).collect();
    let summary = FleetSummary::from_verdicts(&verdicts);
    write_frame(
        metrics,
        writer,
        &ControlFrame::Summary {
            batch_id,
            workers,
            peak_resident,
            summary,
        },
    )
}

/// Answer a non-retryable shard failure in-band, exactly as a single
/// daemon would: an `Unknown` reference gets a `ReferenceAck`, refusals
/// get an `Error` frame, protocol violations end the connection.
fn answer_shard_fail<W: Write>(
    shared: &CoordShared,
    writer: &mut W,
    batch_id: u64,
    fail: ShardFail,
) -> Result<(), ControlError> {
    let metrics = &shared.metrics;
    match fail {
        ShardFail::Unknown(reference) => write_frame(
            metrics,
            writer,
            &ControlFrame::ReferenceAck {
                put_id: batch_id,
                reference,
                status: AckStatus::Unknown,
                // Residency is backend-local; a coordinator reports 0
                // here (§8.3).
                resident_bytes: 0,
            },
        ),
        ShardFail::InBand(message) => {
            metrics.batch_errors.inc();
            write_frame(metrics, writer, &ControlFrame::Error { batch_id, message })
        }
        ShardFail::Fatal(e) => Err(e),
        ShardFail::Dead(e) => Err(e), // unreachable by construction
    }
}

/// Fan a `PutReference` out to every live backend and merge the acks:
/// any rejection wins; otherwise the content-derived ids must agree,
/// the status is `AlreadyResident` only if every backend already held
/// it, and `resident_bytes` sums across the fleet.
fn fan_out_reference(
    shared: &CoordShared,
    backends: &mut [Option<Client<TcpStream>>],
    put_id: u64,
    tdrp: &[u8],
) -> ControlFrame {
    let mut acks: Vec<PutOutcome> = Vec::new();
    for (i, backend) in backends.iter_mut().enumerate() {
        let Some(client) = backend.as_mut() else {
            continue;
        };
        match client.put_reference(put_id, tdrp.to_vec()) {
            Ok(outcome) => acks.push(outcome),
            Err(_) => {
                *backend = None;
                shared.metrics.backend_failures.inc();
                shared.metrics.per_backend[i].failures.inc();
            }
        }
    }
    if acks.is_empty() {
        return ControlFrame::ReferenceAck {
            put_id,
            reference: ReferenceId([0u8; 32]),
            status: AckStatus::Rejected("no live backends".to_string()),
            resident_bytes: 0,
        };
    }
    if let Some(rejected) = acks
        .iter()
        .find(|a| matches!(a.status, AckStatus::Rejected(_)))
    {
        return ControlFrame::ReferenceAck {
            put_id,
            reference: ReferenceId([0u8; 32]),
            status: rejected.status.clone(),
            resident_bytes: 0,
        };
    }
    let reference = acks[0].reference;
    if acks.iter().any(|a| a.reference != reference) {
        // Content addressing makes this impossible for honest backends.
        return ControlFrame::ReferenceAck {
            put_id,
            reference: ReferenceId([0u8; 32]),
            status: AckStatus::Rejected("backends disagree on the content-derived id".to_string()),
            resident_bytes: 0,
        };
    }
    let status = if acks.iter().all(|a| a.status == AckStatus::AlreadyResident) {
        AckStatus::AlreadyResident
    } else {
        AckStatus::Loaded
    };
    ControlFrame::ReferenceAck {
        put_id,
        reference,
        status,
        resident_bytes: acks.iter().map(|a| a.resident_bytes).sum(),
    }
}

/// Fan a `PutBattery` out to every live backend: any rejection wins;
/// otherwise the reported generation is the **minimum** across backends
/// — the floor every backend is guaranteed to have reached.
fn fan_out_battery(
    shared: &CoordShared,
    backends: &mut [Option<Client<TcpStream>>],
    put_id: u64,
    json: &str,
) -> ControlFrame {
    let mut acks: Vec<BatteryOutcome> = Vec::new();
    for (i, backend) in backends.iter_mut().enumerate() {
        let Some(client) = backend.as_mut() else {
            continue;
        };
        match client.put_battery(put_id, json.to_string()) {
            Ok(outcome) => acks.push(outcome),
            Err(_) => {
                *backend = None;
                shared.metrics.backend_failures.inc();
                shared.metrics.per_backend[i].failures.inc();
            }
        }
    }
    if acks.is_empty() {
        return ControlFrame::BatteryAck {
            put_id,
            generation: 0,
            status: AckStatus::Rejected("no live backends".to_string()),
        };
    }
    if let Some(rejected) = acks
        .iter()
        .find(|a| matches!(a.status, AckStatus::Rejected(_)))
    {
        return ControlFrame::BatteryAck {
            put_id,
            generation: 0,
            status: rejected.status.clone(),
        };
    }
    ControlFrame::BatteryAck {
        put_id,
        generation: acks.iter().map(|a| a.generation).min().unwrap_or(0),
        status: AckStatus::Loaded,
    }
}
