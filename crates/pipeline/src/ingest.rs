//! Batch ingest: the wire format sessions arrive in.
//!
//! A batch is a magic/version header followed by one record per session:
//!
//! ```text
//! "TDRB" | u16 version | u16 flags | varint n_sessions
//! per session:
//!   varint session_id
//!   varint n_ipds, then zigzag varint deltas of the observed IPDs
//!   u32 LE CRC-32 of the session header (id + IPD bytes)
//!   u32 LE frame length, then the `replay::codec` binary event log
//! ```
//!
//! Observed IPDs ride along with the log because the auditor needs both:
//! the log is the suspect's claim about its *inputs*, the observed IPDs
//! are the network's ground truth about its *outputs*. Each session is
//! individually checksummed — the header (id + IPDs) carries its own
//! CRC-32 and the event log its codec trailer — so one corrupted session
//! is reported by index instead of poisoning the whole batch, and the
//! IPDs the verdict is computed from cannot be silently corrupted.

use std::fmt;

use replay::codec::{wire, CodecError};
use replay::EventLog;

use crate::AuditJob;

/// Magic bytes opening a batch.
pub const BATCH_MAGIC: [u8; 4] = *b"TDRB";

/// Current batch-format version.
pub const BATCH_VERSION: u16 = 1;

/// Batch decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Not a batch file.
    BadMagic,
    /// Newer or unknown batch version.
    UnsupportedVersion(u16),
    /// Input ended early.
    Truncated,
    /// The batch header (version/flags/count) failed to decode.
    BadHeader(CodecError),
    /// Nonzero flags in a version-1 batch.
    UnsupportedFlags(u16),
    /// Session `index` failed to decode (header checksum or event log).
    BadSession {
        /// Zero-based index within the batch.
        index: usize,
        /// The underlying codec failure.
        cause: CodecError,
    },
    /// Bytes remained after the last declared session.
    TrailingBytes(usize),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::BadMagic => write!(f, "bad magic (not a TDRB batch)"),
            IngestError::UnsupportedVersion(v) => write!(f, "unsupported batch version {v}"),
            IngestError::Truncated => write!(f, "batch truncated"),
            IngestError::BadHeader(cause) => write!(f, "batch header failed to decode: {cause}"),
            IngestError::UnsupportedFlags(x) => write!(f, "unsupported batch flags {x:#06x}"),
            IngestError::BadSession { index, cause } => {
                write!(f, "session {index} failed to decode: {cause}")
            }
            IngestError::TrailingBytes(n) => write!(f, "{n} trailing bytes after batch"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Encode a batch of audit jobs.
pub fn encode_batch(jobs: &[AuditJob]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&BATCH_MAGIC);
    out.extend_from_slice(&BATCH_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags
    wire::put_varint(&mut out, jobs.len() as u64);
    for job in jobs {
        let header_start = out.len();
        wire::put_varint(&mut out, job.session_id);
        wire::put_varint(&mut out, job.observed_ipds.len() as u64);
        let mut prev = 0u64;
        for &d in &job.observed_ipds {
            wire::put_delta(&mut out, prev, d);
            prev = d;
        }
        let crc = wire::crc32(&out[header_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
        let encoded = job.log.encode();
        out.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
        out.extend_from_slice(&encoded);
    }
    out
}

/// Decode a batch of audit jobs.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<AuditJob>, IngestError> {
    if bytes.len() < 8 {
        return Err(IngestError::Truncated);
    }
    if bytes[..4] != BATCH_MAGIC {
        return Err(IngestError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != BATCH_VERSION {
        return Err(IngestError::UnsupportedVersion(version));
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if flags != 0 {
        return Err(IngestError::UnsupportedFlags(flags));
    }
    let mut pos = 8;
    let n = wire::read_varint(bytes, &mut pos).map_err(IngestError::BadHeader)? as usize;
    if n > bytes.len() {
        return Err(IngestError::Truncated);
    }
    let mut jobs = Vec::with_capacity(n);
    for index in 0..n {
        let bad = |cause| IngestError::BadSession { index, cause };
        let header_start = pos;
        let session_id = wire::read_varint(bytes, &mut pos).map_err(bad)?;
        let n_ipds = wire::read_varint(bytes, &mut pos).map_err(bad)? as usize;
        if n_ipds > bytes.len() - pos {
            return Err(IngestError::Truncated);
        }
        let mut observed_ipds = Vec::with_capacity(n_ipds);
        let mut prev = 0u64;
        for _ in 0..n_ipds {
            prev = wire::read_delta(bytes, &mut pos, prev).map_err(bad)?;
            observed_ipds.push(prev);
        }
        if bytes.len() - pos < 4 {
            return Err(IngestError::Truncated);
        }
        let stored = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let computed = wire::crc32(&bytes[header_start..pos]);
        pos += 4;
        if stored != computed {
            return Err(bad(CodecError::BadChecksum { stored, computed }));
        }
        if bytes.len() - pos < 4 {
            return Err(IngestError::Truncated);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        pos += 4;
        if bytes.len() - pos < len {
            return Err(IngestError::Truncated);
        }
        let log = EventLog::decode(&bytes[pos..pos + len]).map_err(bad)?;
        pos += len;
        jobs.push(AuditJob {
            session_id,
            log,
            observed_ipds,
        });
    }
    if pos != bytes.len() {
        return Err(IngestError::TrailingBytes(bytes.len() - pos));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use replay::PacketRecord;

    use super::*;

    fn job(id: u64) -> AuditJob {
        AuditJob {
            session_id: id,
            log: EventLog {
                packets: vec![PacketRecord {
                    icount: 10 * id,
                    avail_at: 100,
                    wire_at: 90,
                    data: vec![id as u8; 16],
                }],
                values: vec![id, id + 1],
                final_icount: 1_000 + id,
                final_cycles: 2_000 + id,
                final_wall_ps: 3_000 + id as u128,
            },
            observed_ipds: vec![700_000, 710_000, 690_000 + id],
        }
    }

    #[test]
    fn batch_roundtrips() {
        let jobs = vec![job(1), job(2), job(40)];
        let bytes = encode_batch(&jobs);
        assert_eq!(decode_batch(&bytes).expect("decodes"), jobs);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = encode_batch(&[]);
        assert_eq!(decode_batch(&bytes).expect("decodes"), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_batch(&[job(1)]);
        bytes[1] = b'X';
        assert_eq!(decode_batch(&bytes), Err(IngestError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = encode_batch(&[job(1)]);
        bytes[4] = 9;
        assert_eq!(
            decode_batch(&bytes),
            Err(IngestError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn corrupt_session_reported_by_index() {
        let jobs = vec![job(1), job(2)];
        let mut bytes = encode_batch(&jobs);
        let tail = bytes.len() - 10; // inside the second session's log frame
        bytes[tail] ^= 0xff;
        match decode_batch(&bytes) {
            Err(IngestError::BadSession { index: 1, .. }) => {}
            other => panic!("expected BadSession at 1, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_observed_ipds_rejected_by_header_checksum() {
        let jobs = vec![job(1)];
        let mut bytes = encode_batch(&jobs);
        // Byte 9 sits in the first session's IPD deltas (after the 8-byte
        // batch header and the 1-byte session id).
        bytes[9] ^= 0x01;
        match decode_batch(&bytes) {
            Err(IngestError::BadSession {
                index: 0,
                cause: CodecError::BadChecksum { .. },
            }) => {}
            other => panic!("expected header-checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn nonzero_flags_rejected() {
        let mut bytes = encode_batch(&[job(1)]);
        bytes[6] = 0x01;
        assert_eq!(decode_batch(&bytes), Err(IngestError::UnsupportedFlags(1)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_batch(&[job(1)]);
        bytes.extend_from_slice(b"junk");
        assert_eq!(decode_batch(&bytes), Err(IngestError::TrailingBytes(4)));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_batch(&[job(1), job(2)]);
        for cut in [0, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_batch(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
