//! Batch ingest: the wire format sessions arrive in.
//!
//! A batch is a magic/version header followed by one record per session:
//!
//! ```text
//! "TDRB" | u16 version | u16 flags | varint n_sessions
//! per session:
//!   varint session_id
//!   varint n_ipds, then zigzag varint deltas of the observed IPDs
//!   u32 LE CRC-32 of the session header (id + IPD bytes)
//!   u32 LE frame length, then the `replay::codec` binary event log
//! ```
//!
//! Observed IPDs ride along with the log because the auditor needs both:
//! the log is the suspect's claim about its *inputs*, the observed IPDs
//! are the network's ground truth about its *outputs*. Each session is
//! individually checksummed — the header (id + IPDs) carries its own
//! CRC-32 and the event log its codec trailer — so one corrupted session
//! is reported by index instead of poisoning the whole batch, and the
//! IPDs the verdict is computed from cannot be silently corrupted.
//!
//! Ingest is *streaming*: [`BatchStream`] pulls sessions one at a time
//! from any [`std::io::Read`] source (a file, a socket, an in-memory
//! slice), holding at most one session resident, with every checksum
//! validated incrementally as bytes arrive. [`decode_batch`] is the
//! materialized convenience built on the same decoder, so the two paths
//! cannot drift. The format itself is specified normatively in
//! `docs/FORMATS.md` (§ "TDRB batch container").

use std::fmt;
use std::io::{self, Read};

use replay::codec::{wire, CodecError};
use replay::stream::{read_full, read_log_frame, read_varint_from, StreamError};

use crate::AuditJob;

/// Magic bytes opening a batch.
pub const BATCH_MAGIC: [u8; 4] = *b"TDRB";

/// Current batch-format version.
pub const BATCH_VERSION: u16 = 1;

/// Batch decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Not a batch file.
    BadMagic,
    /// Newer or unknown batch version.
    UnsupportedVersion(u16),
    /// Input ended early.
    Truncated,
    /// The batch header (version/flags/count) failed to decode.
    BadHeader(CodecError),
    /// Nonzero flags in a version-1 batch.
    UnsupportedFlags(u16),
    /// Session `index` failed to decode (header checksum or event log).
    BadSession {
        /// Zero-based index within the batch.
        index: usize,
        /// The underlying codec failure.
        cause: CodecError,
    },
    /// Bytes remained after the last declared session.
    TrailingBytes(usize),
    /// The transport failed mid-stream (not a data-corruption error; a
    /// clean end-of-stream inside a session reports as truncation instead).
    Io(io::ErrorKind, String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::BadMagic => write!(f, "bad magic (not a TDRB batch)"),
            IngestError::UnsupportedVersion(v) => write!(f, "unsupported batch version {v}"),
            IngestError::Truncated => write!(f, "batch truncated"),
            IngestError::BadHeader(cause) => write!(f, "batch header failed to decode: {cause}"),
            IngestError::UnsupportedFlags(x) => write!(f, "unsupported batch flags {x:#06x}"),
            IngestError::BadSession { index, cause } => {
                write!(f, "session {index} failed to decode: {cause}")
            }
            IngestError::TrailingBytes(n) => write!(f, "{n} trailing bytes after batch"),
            IngestError::Io(kind, msg) => write!(f, "read failed ({kind:?}): {msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Encode a batch of audit jobs.
pub fn encode_batch(jobs: &[AuditJob]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&BATCH_MAGIC);
    out.extend_from_slice(&BATCH_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags
    wire::put_varint(&mut out, jobs.len() as u64);
    for job in jobs {
        let header_start = out.len();
        wire::put_varint(&mut out, job.session_id);
        wire::put_varint(&mut out, job.observed_ipds.len() as u64);
        let mut prev = 0u64;
        for &d in &job.observed_ipds {
            wire::put_delta(&mut out, prev, d);
            prev = d;
        }
        let crc = wire::crc32(&out[header_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
        let encoded = job.log.encode();
        out.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
        out.extend_from_slice(&encoded);
    }
    out
}

/// Decode a batch of audit jobs, materializing every session.
///
/// This is [`BatchStream`] run to completion — kept for small batches and
/// for tests that want the whole fleet in hand. Anything fleet-sized
/// should consume the stream directly (see [`crate::audit_stream`]), which
/// holds at most a bounded number of sessions resident.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<AuditJob>, IngestError> {
    BatchStream::new(bytes)?.collect()
}

/// Cap on the IPD count one session may declare (bounded memory: a corrupt
/// or adversarial count must not balloon the resident set). One million
/// IPDs is ~8 MiB and two orders of magnitude above any recorded session.
pub const DEFAULT_MAX_IPDS: usize = 1 << 20;

fn session_err(index: usize, e: StreamError) -> IngestError {
    match e {
        StreamError::Io(kind, msg) => IngestError::Io(kind, msg),
        StreamError::Codec(cause) => IngestError::BadSession { index, cause },
        StreamError::FrameTooLarge { .. } => IngestError::BadSession {
            index,
            cause: CodecError::LengthOverflow,
        },
    }
}

/// Pull-based session iterator over a TDRB byte stream from any
/// [`io::Read`] source.
///
/// Construction reads and validates the batch header; each call to
/// [`next`](Iterator::next) then decodes exactly one session — its header
/// CRC checked against the bytes as they arrived, its event-log frame
/// decoded via the incremental [`replay::stream`] reader — so memory stays
/// bounded by one session regardless of batch size. After the last
/// declared session the source must be exhausted; leftover bytes are
/// reported as [`IngestError::TrailingBytes`].
///
/// Yields `Err` once, then stops: like the materialized decoder, a
/// malformed session poisons the batch, but it is reported with its index
/// so the submitter knows which upload to retry.
#[derive(Debug)]
pub struct BatchStream<R> {
    src: R,
    declared: u64,
    yielded: u64,
    hdr_buf: Vec<u8>,
    frame_buf: Vec<u8>,
    max_frame_len: usize,
    max_ipds: usize,
    done: bool,
}

impl<R: Read> BatchStream<R> {
    /// Read and validate the batch header, returning the session iterator.
    ///
    /// Session *headers* (ids and IPD deltas) decode varint-by-varint, so
    /// for unbuffered sources (a raw `File` or socket) wrap `src` in a
    /// [`std::io::BufReader`] first — [`crate::audit_stream`]'s callers
    /// get this via `Sanity::audit_stream`, which buffers internally.
    pub fn new(mut src: R) -> Result<Self, IngestError> {
        let mut header = [0u8; 8];
        let got = match read_full(&mut src, &mut header) {
            Ok(n) => n,
            Err(StreamError::Io(kind, msg)) => return Err(IngestError::Io(kind, msg)),
            Err(StreamError::Codec(cause)) => return Err(IngestError::BadHeader(cause)),
            Err(StreamError::FrameTooLarge { .. }) => unreachable!("read_full is frame-agnostic"),
        };
        if got < header.len() {
            return Err(IngestError::Truncated);
        }
        if header[..4] != BATCH_MAGIC {
            return Err(IngestError::BadMagic);
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
        if version != BATCH_VERSION {
            return Err(IngestError::UnsupportedVersion(version));
        }
        let flags = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes"));
        if flags != 0 {
            return Err(IngestError::UnsupportedFlags(flags));
        }
        let mut scratch = Vec::with_capacity(10);
        let declared = read_varint_from(&mut src, &mut scratch).map_err(|e| match e {
            StreamError::Io(kind, msg) => IngestError::Io(kind, msg),
            StreamError::Codec(cause) => IngestError::BadHeader(cause),
            StreamError::FrameTooLarge { .. } => unreachable!("varints are not frames"),
        })?;
        Ok(BatchStream {
            src,
            declared,
            yielded: 0,
            hdr_buf: Vec::new(),
            frame_buf: Vec::new(),
            max_frame_len: replay::stream::DEFAULT_MAX_FRAME_LEN,
            max_ipds: DEFAULT_MAX_IPDS,
            done: false,
        })
    }

    /// Cap the length one session's event-log frame may declare.
    pub fn with_max_frame_len(mut self, max: usize) -> Self {
        self.max_frame_len = max;
        self
    }

    /// Cap the IPD count one session may declare (default
    /// [`DEFAULT_MAX_IPDS`]); raise it for legitimately long sessions.
    pub fn with_max_ipds(mut self, max: usize) -> Self {
        self.max_ipds = max;
        self
    }

    /// Sessions the batch header declared.
    pub fn sessions_declared(&self) -> u64 {
        self.declared
    }

    /// Sessions successfully yielded so far.
    pub fn sessions_yielded(&self) -> u64 {
        self.yielded
    }

    fn next_session(&mut self) -> Result<AuditJob, IngestError> {
        let index = self.yielded as usize;
        let bad = |cause| IngestError::BadSession { index, cause };

        // Session header: id + IPD deltas, with the raw bytes captured so
        // the header CRC can be recomputed exactly as the encoder wrote it.
        self.hdr_buf.clear();
        let session_id = read_varint_from(&mut self.src, &mut self.hdr_buf)
            .map_err(|e| session_err(index, e))?;
        let n_ipds = read_varint_from(&mut self.src, &mut self.hdr_buf)
            .map_err(|e| session_err(index, e))? as usize;
        if n_ipds > self.max_ipds {
            return Err(bad(CodecError::LengthOverflow));
        }
        let mut observed_ipds = Vec::with_capacity(n_ipds.min(4096));
        let mut prev = 0u64;
        for _ in 0..n_ipds {
            let z = read_varint_from(&mut self.src, &mut self.hdr_buf)
                .map_err(|e| session_err(index, e))?;
            prev = wire::apply_delta(prev, z);
            observed_ipds.push(prev);
        }
        let mut trailer = [0u8; 4];
        match read_full(&mut self.src, &mut trailer) {
            Ok(4) => {}
            Ok(_) => return Err(bad(CodecError::Truncated)),
            Err(e) => return Err(session_err(index, e)),
        }
        let stored = u32::from_le_bytes(trailer);
        let computed = wire::crc32(&self.hdr_buf);
        if stored != computed {
            return Err(bad(CodecError::BadChecksum { stored, computed }));
        }

        // The event-log frame, decoded with incremental CRC validation.
        let mut len_bytes = [0u8; 4];
        match read_full(&mut self.src, &mut len_bytes) {
            Ok(4) => {}
            Ok(_) => return Err(bad(CodecError::Truncated)),
            Err(e) => return Err(session_err(index, e)),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > self.max_frame_len {
            return Err(bad(CodecError::LengthOverflow));
        }
        let log = read_log_frame(&mut self.src, len, &mut self.frame_buf)
            .map_err(|e| session_err(index, e))?;

        self.yielded += 1;
        Ok(AuditJob {
            session_id,
            log,
            observed_ipds,
        })
    }

    /// After the declared sessions, the source must be exhausted (the
    /// format is one-shot: §4 of `docs/FORMATS.md` — a daemon accepting
    /// many batches per connection needs its own outer framing). One
    /// bounded probe read distinguishes clean EOF from trailing garbage;
    /// a peer streaming junk is rejected after at most one buffer, never
    /// drained to EOF.
    fn check_trailing(&mut self) -> Result<(), IngestError> {
        let mut chunk = [0u8; 4096];
        match read_full(&mut self.src, &mut chunk) {
            Ok(0) => Ok(()),
            // Exact count for sources that ended inside the probe; a lower
            // bound (the error is diagnostic either way) for longer tails.
            Ok(n) => Err(IngestError::TrailingBytes(n)),
            Err(StreamError::Io(kind, msg)) => Err(IngestError::Io(kind, msg)),
            Err(_) => Ok(()),
        }
    }
}

impl<R: Read> Iterator for BatchStream<R> {
    type Item = Result<AuditJob, IngestError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.yielded == self.declared {
            self.done = true;
            return match self.check_trailing() {
                Ok(()) => None,
                Err(e) => Some(Err(e)),
            };
        }
        match self.next_session() {
            Ok(job) => Some(Ok(job)),
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use replay::{EventLog, PacketRecord};

    use super::*;

    fn job(id: u64) -> AuditJob {
        AuditJob {
            session_id: id,
            log: EventLog {
                packets: vec![PacketRecord {
                    icount: 10 * id,
                    avail_at: 100,
                    wire_at: 90,
                    data: vec![id as u8; 16],
                }],
                values: vec![id, id + 1],
                final_icount: 1_000 + id,
                final_cycles: 2_000 + id,
                final_wall_ps: 3_000 + id as u128,
            },
            observed_ipds: vec![700_000, 710_000, 690_000 + id],
        }
    }

    #[test]
    fn batch_roundtrips() {
        let jobs = vec![job(1), job(2), job(40)];
        let bytes = encode_batch(&jobs);
        assert_eq!(decode_batch(&bytes).expect("decodes"), jobs);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = encode_batch(&[]);
        assert_eq!(decode_batch(&bytes).expect("decodes"), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_batch(&[job(1)]);
        bytes[1] = b'X';
        assert_eq!(decode_batch(&bytes), Err(IngestError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = encode_batch(&[job(1)]);
        bytes[4] = 9;
        assert_eq!(
            decode_batch(&bytes),
            Err(IngestError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn corrupt_session_reported_by_index() {
        let jobs = vec![job(1), job(2)];
        let mut bytes = encode_batch(&jobs);
        let tail = bytes.len() - 10; // inside the second session's log frame
        bytes[tail] ^= 0xff;
        match decode_batch(&bytes) {
            Err(IngestError::BadSession { index: 1, .. }) => {}
            other => panic!("expected BadSession at 1, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_observed_ipds_rejected_by_header_checksum() {
        let jobs = vec![job(1)];
        let mut bytes = encode_batch(&jobs);
        // Byte 9 sits in the first session's IPD deltas (after the 8-byte
        // batch header and the 1-byte session id).
        bytes[9] ^= 0x01;
        match decode_batch(&bytes) {
            Err(IngestError::BadSession {
                index: 0,
                cause: CodecError::BadChecksum { .. },
            }) => {}
            other => panic!("expected header-checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn nonzero_flags_rejected() {
        let mut bytes = encode_batch(&[job(1)]);
        bytes[6] = 0x01;
        assert_eq!(decode_batch(&bytes), Err(IngestError::UnsupportedFlags(1)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_batch(&[job(1)]);
        bytes.extend_from_slice(b"junk");
        assert_eq!(decode_batch(&bytes), Err(IngestError::TrailingBytes(4)));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_batch(&[job(1), job(2)]);
        for cut in [0, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_batch(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn stream_agrees_with_materialized_at_every_chunk_size() {
        let jobs = vec![job(1), job(2), job(40), job(200)];
        let bytes = encode_batch(&jobs);
        let materialized = decode_batch(&bytes).expect("decodes");
        // chunk == 1 puts a read boundary at every byte: mid-varint,
        // mid-frame, mid-CRC.
        for chunk in [1usize, 3, 7, 64, 4096] {
            let src = replay::stream::ChunkReader::new(&bytes[..], chunk);
            let streamed: Vec<AuditJob> = BatchStream::new(src)
                .expect("header")
                .collect::<Result<_, _>>()
                .unwrap_or_else(|e| panic!("chunk {chunk}: {e}"));
            assert_eq!(streamed, materialized, "chunk size {chunk}");
        }
    }

    #[test]
    fn stream_holds_one_session_at_a_time() {
        let jobs = vec![job(1), job(2), job(3)];
        let bytes = encode_batch(&jobs);
        let mut stream = BatchStream::new(&bytes[..]).expect("header");
        assert_eq!(stream.sessions_declared(), 3);
        let mut n = 0;
        while let Some(item) = stream.next() {
            item.expect("session decodes");
            n += 1;
            assert_eq!(stream.sessions_yielded(), n);
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn zero_session_batch_streams_empty() {
        let bytes = encode_batch(&[]);
        let mut stream = BatchStream::new(&bytes[..]).expect("header");
        assert_eq!(stream.sessions_declared(), 0);
        assert!(stream.next().is_none());
        // A zero-session batch with junk after the header is still corrupt.
        let mut dirty = encode_batch(&[]);
        dirty.extend_from_slice(b"xy");
        let got: Vec<_> = BatchStream::new(&dirty[..]).expect("header").collect();
        assert_eq!(got, vec![Err(IngestError::TrailingBytes(2))]);
    }

    #[test]
    fn stream_truncation_reported_with_session_index() {
        let bytes = encode_batch(&[job(1), job(2)]);
        // Cut inside the second session (the first decodes cleanly).
        let cut = bytes.len() - 3;
        let results: Vec<_> = BatchStream::new(&bytes[..cut]).expect("header").collect();
        assert_eq!(results.len(), 2, "one good session, then the error");
        assert!(results[0].is_ok());
        assert_eq!(
            results[1],
            Err(IngestError::BadSession {
                index: 1,
                cause: CodecError::Truncated
            })
        );
    }

    #[test]
    fn stream_corrupt_crc_reported_with_session_index() {
        let jobs = vec![job(1), job(2)];
        let mut bytes = encode_batch(&jobs);
        let tail = bytes.len() - 10; // inside the second session's log frame
        bytes[tail] ^= 0xff;
        let results: Vec<_> = BatchStream::new(&bytes[..]).expect("header").collect();
        assert!(results[0].is_ok());
        assert!(
            matches!(
                &results[1],
                Err(IngestError::BadSession {
                    index: 1,
                    cause: CodecError::BadChecksum { .. }
                })
            ),
            "{:?}",
            results[1]
        );
        assert_eq!(results.len(), 2, "iteration stops at the first error");
    }

    #[test]
    fn stream_unknown_version_rejected_at_header() {
        let mut bytes = encode_batch(&[job(1)]);
        bytes[4] = 9;
        match BatchStream::new(&bytes[..]) {
            Err(IngestError::UnsupportedVersion(9)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn stream_oversized_declarations_bounded() {
        // A session declaring an absurd IPD count must fail fast instead of
        // allocating: encode a valid one-session batch, then rewrite the
        // count. Easier: build the header by hand.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BATCH_MAGIC);
        bytes.extend_from_slice(&BATCH_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        wire::put_varint(&mut bytes, 1); // one session
        wire::put_varint(&mut bytes, 7); // session id
        wire::put_varint(&mut bytes, u64::MAX >> 1); // preposterous IPD count
        let results: Vec<_> = BatchStream::new(&bytes[..]).expect("header").collect();
        assert_eq!(
            results,
            vec![Err(IngestError::BadSession {
                index: 0,
                cause: CodecError::LengthOverflow
            })]
        );
    }
}
