//! TCP front end for the audit daemon: many connections, one warm pool.
//!
//! [`AuditService::serve`] speaks the TDRC control plane over any
//! `Read + Write` pair but handles exactly one peer. [`serve_tcp`] makes
//! the service deployable: it takes a bound [`TcpListener`], accepts
//! connections on a dedicated thread, and runs one `serve` loop per
//! connection on its own thread — every connection multiplexes its
//! submissions onto the **same** warm worker pool and sees the same
//! battery generation, which is the whole point of a fleet daemon (one
//! spin-up, many log sources).
//!
//! ## Connection lifecycle (normative rules in `docs/FORMATS.md` §5.4)
//!
//! * Each connection carries one independent TDRC request/response
//!   stream; response frames of different connections are never
//!   interleaved.
//! * [`ControlFrame::Shutdown`] is
//!   **connection** shutdown: the daemon acks and closes that connection.
//!   The daemon itself stops only via [`TcpDaemon::shutdown`] (an
//!   operator action), which stops accepting, waits for every in-flight
//!   connection to finish — graceful drain — and hands the still-warm
//!   [`AuditService`] back.
//! * A peer that vanishes mid-frame, writes garbage, or goes away while
//!   verdicts are being written ends **its own** connection with a typed
//!   [`ControlError`] (counted by
//!   [`TcpDaemon::connection_errors`]) and never takes the daemon down.
//!   Writes to a dead peer surface as `io::Error` (`EPIPE`) rather than a
//!   fatal `SIGPIPE`, because the Rust runtime ignores `SIGPIPE` at
//!   startup; the serve loop maps them into `ControlError::Io` like any
//!   other transport failure.
//!
//! ## Admission control (normative rules in `docs/FORMATS.md` §5.6)
//!
//! With [`DaemonOptions::max_conns`] set, a connection arriving while
//! `max_conns` are already active is **shed**: the daemon answers with a
//! single connection-scoped
//! [`ControlFrame::Busy`] frame and closes —
//! no serve thread, no unbounded thread growth. Shed connections are
//! counted by `conn_shed` (reported as [`DaemonReport::connections_shed`])
//! and are **neither** accepted **nor** errored, so
//! `accepted + shed` is exactly the number of TCP connects the daemon
//! answered. With [`DaemonOptions::tenant_quota`] set, each connection's
//! serve loop enforces the quota in-band via
//! [`AuditService::serve_as_tenant`] — the connection id is the tenant id.
//!
//! The torture suite (`tests/protocol_torture.rs`,
//! `tests/integration_daemon_tcp.rs`, `tests/fairness_torture.rs`) pins
//! all of this: corrupt frames, slow-loris writers, mid-frame
//! disconnects, concurrent clients, and flooding tenants all leave the
//! daemon serving, with verdict bytes identical to the in-memory duplex
//! path and to in-process submission.

use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::control::{BusyScope, ControlError, ControlFrame};
use crate::obs::{CountingRead, CountingWrite, MetricsSnapshot, ServiceMetrics, TraceKind};
use crate::service::{AuditService, TenantQuota};

/// Shared accept/connection bookkeeping. Connection tallies live in the
/// service's metric set ([`crate::obs::ServiceMetrics`]), not here — one
/// source of truth for the live accessors, [`DaemonReport`], and the TDRC
/// `Stats` frame.
#[derive(Debug, Default)]
struct DaemonState {
    /// Connection threads still owed a join. Finished ones are reaped on
    /// each accept **and** as each connection exits (so an idle daemon
    /// that stops receiving connects does not hold every handle it ever
    /// served until the next accept — at most the last connection to
    /// finish stays unreaped, since a thread cannot join itself); the
    /// remainder joins at shutdown. Every join increments `conn_reaped`,
    /// so after a drain the ledger balances: `conn_reaped` equals the
    /// connection threads ever spawned.
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// Front-end policy knobs for [`serve_tcp_with`].
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// Per-connection read deadline. A peer that goes silent for this
    /// long mid-stream has its connection closed with a typed
    /// [`ControlError::IdleTimeout`] (counted by `conn_idle_timeout`),
    /// freeing the connection thread — the slow-loris defense. `None`
    /// (the default, and [`serve_tcp`]'s behavior) keeps the historical
    /// semantics: a connection may idle forever.
    pub idle_timeout: Option<Duration>,
    /// Connection cap. While this many connections are active, further
    /// arrivals are shed with one connection-scoped
    /// [`ControlFrame::Busy`] frame and a
    /// close (counted by `conn_shed`, never an error). `None` (the
    /// default) accepts without bound.
    pub max_conns: Option<usize>,
    /// Per-connection submission quota, enforced in-band by each
    /// connection's serve loop (see
    /// [`AuditService::serve_as_tenant`]). `None` (the default) leaves
    /// submissions unbounded.
    pub tenant_quota: Option<TenantQuota>,
}

/// What a daemon hands back at [`TcpDaemon::shutdown`]: the still-warm
/// service plus final tallies. The tallies are views over the service's
/// metric set, captured after every connection thread joined — they
/// cannot disagree with a `Stats` snapshot taken at the same point.
#[derive(Debug)]
pub struct DaemonReport {
    /// The service the daemon was serving, still warm — reusable
    /// directly or via another [`serve_tcp`] call.
    pub service: AuditService,
    /// Connections accepted over the daemon's lifetime (the
    /// `conn_accepted` counter).
    pub connections_accepted: u64,
    /// Connections that ended with a protocol or transport error (the
    /// `conn_errors` counter).
    pub connection_errors: u64,
    /// Connections shed at the cap with a `Busy` frame (the `conn_shed`
    /// counter) — distinct from both accepted and errored connections:
    /// `accepted + shed` is every TCP connect the daemon answered.
    pub connections_shed: u64,
    /// Every service metric at shutdown, name-ordered (what a
    /// [`ControlFrame::Stats`] response would
    /// have carried at that instant).
    pub snapshot: MetricsSnapshot,
}

/// A running TCP audit daemon: an accept loop plus one serve thread per
/// connection, all sharing one warm [`AuditService`].
///
/// Built by [`serve_tcp`]. Dropping the daemon performs the same graceful
/// shutdown as [`shutdown`](Self::shutdown) (minus returning the
/// service).
#[derive(Debug)]
pub struct TcpDaemon {
    service: Arc<AuditService>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<DaemonState>,
    accept_thread: Option<JoinHandle<()>>,
}

/// [`serve_tcp`] with explicit [`DaemonOptions`] (idle timeout etc.).
pub fn serve_tcp_with(
    service: AuditService,
    listener: TcpListener,
    options: DaemonOptions,
) -> io::Result<TcpDaemon> {
    let addr = listener.local_addr()?;
    let service = Arc::new(service);
    let stop = Arc::new(AtomicBool::new(false));
    let state = Arc::new(DaemonState::default());
    let accept_thread = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("tdrd-accept".to_string())
            .spawn(move || accept_loop(listener, service, stop, state, options))?
    };
    Ok(TcpDaemon {
        service,
        addr,
        stop,
        state,
        accept_thread: Some(accept_thread),
    })
}

/// Serve the TDRC control plane over TCP: accept connections on
/// `listener` (typically bound to an explicit port, or `127.0.0.1:0` for
/// an ephemeral one — read it back via [`TcpDaemon::local_addr`]) and run
/// one [`AuditService::serve`] loop per connection, connection-per-thread.
///
/// The returned handle owns the service; [`TcpDaemon::shutdown`] stops
/// accepting, drains in-flight connections, and returns the service still
/// warm. Per-connection failures — protocol garbage, a client vanishing
/// mid-frame, a broken pipe while writing verdicts — end that connection
/// only (see [`TcpDaemon::connection_errors`]).
pub fn serve_tcp(service: AuditService, listener: TcpListener) -> io::Result<TcpDaemon> {
    serve_tcp_with(service, listener, DaemonOptions::default())
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<AuditService>,
    stop: Arc<AtomicBool>,
    state: Arc<DaemonState>,
    options: DaemonOptions,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): the
                // daemon must outlive it. Back off briefly and retry.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            // The wake-up connection from `shutdown` (or a client racing
            // it). Either way the daemon is closing: drop it unanswered.
            drop(stream);
            return;
        }
        let metrics = service.metrics();
        if let Some(cap) = options.max_conns {
            let active = metrics.conn_active.get();
            if active as usize >= cap {
                shed_connection(&stream, metrics, active, cap as u64);
                drop(stream);
                continue;
            }
        }
        // The accept counter doubles as the 1-based connection id keying
        // this connection's trace events and thread name.
        let conn_id = metrics.conn_accepted.inc();
        metrics.trace(TraceKind::ConnAccept, conn_id, 0);
        metrics.conn_active.inc();
        reap_finished(&state, metrics);
        let handle = {
            let service = Arc::clone(&service);
            let state = Arc::clone(&state);
            let options = options.clone();
            std::thread::Builder::new()
                .name(format!("tdrd-conn-{conn_id}"))
                .spawn(move || serve_connection(&service, &state, stream, conn_id, &options))
        };
        match handle {
            Ok(handle) => state.conns.lock().expect("conns lock").push(handle),
            Err(_) => {
                // Could not spawn a thread: count it against the daemon's
                // error tally and keep accepting — refusing one client is
                // recoverable, dying is not.
                metrics.conn_active.dec();
                metrics.conn_errors.inc();
                metrics.trace(TraceKind::ConnError, conn_id, 0);
            }
        }
    }
}

/// Refuse one over-cap connection: answer with a single
/// connection-scoped `Busy` frame (`batch_id` 0 — no request was read)
/// and let the caller close the socket. Best-effort write: a peer that
/// already vanished is shed all the same.
fn shed_connection(stream: &TcpStream, metrics: &ServiceMetrics, active: u64, cap: u64) {
    let mut writer = CountingWrite::new(BufWriter::new(stream), Arc::clone(&metrics.bytes_out));
    let wrote = ControlFrame::Busy {
        batch_id: 0,
        scope: BusyScope::Connections,
        active,
        limit: cap,
    }
    .write_to(&mut writer)
    .and_then(|()| writer.flush().map_err(ControlError::from_io));
    if wrote.is_ok() {
        metrics.frames_out.inc();
        metrics.frames_out_busy.inc();
    }
    metrics.conn_shed.inc();
    metrics.trace(TraceKind::ConnShed, active, cap);
}

/// One connection's lifetime: serve until clean EOF / `Shutdown`, or a
/// typed protocol/transport error (counted, never fatal to the daemon).
fn serve_connection(
    service: &AuditService,
    state: &DaemonState,
    stream: TcpStream,
    conn_id: u64,
    options: &DaemonOptions,
) {
    let metrics = service.metrics();
    // Verdict frames are small and latency matters for the submit→verdict
    // stream; disable Nagle and buffer writes per frame instead.
    let _ = stream.set_nodelay(true);
    if let Some(deadline) = options.idle_timeout {
        // A read past the deadline fails with WouldBlock/TimedOut, which
        // the serve loop classifies as `ControlError::IdleTimeout`.
        let _ = stream.set_read_timeout(Some(deadline));
    }
    let reader = CountingRead::new(&stream, Arc::clone(&metrics.bytes_in));
    let writer = CountingWrite::new(BufWriter::new(&stream), Arc::clone(&metrics.bytes_out));
    // The connection id is the tenant id: submissions from this peer are
    // round-robin scheduled against other connections' work and metered
    // under `tenant_{conn_id}_*`.
    let outcome = service.serve_as_tenant(reader, writer, conn_id, options.tenant_quota);
    match &outcome {
        Ok(()) => metrics.trace(TraceKind::ConnClose, conn_id, 0),
        Err(ControlError::IdleTimeout) => {
            metrics.conn_idle_timeout.inc();
            metrics.conn_errors.inc();
            metrics.trace(TraceKind::ConnIdleTimeout, conn_id, 0);
        }
        Err(_) => {
            metrics.conn_errors.inc();
            metrics.trace(TraceKind::ConnError, conn_id, 0);
        }
    }
    metrics.conn_active.dec();
    let _ = stream.shutdown(Shutdown::Both);
    // Reap on the way out, not only on the next accept: an idle daemon
    // (or a coordinator backend between batches) may never see another
    // connect, and without this every handle it ever served would sit
    // unjoined until shutdown. This thread's own handle reports
    // unfinished to `is_finished` and is left for the next reaper.
    reap_finished(state, metrics);
}

/// Join connection threads that already finished, so a long-lived daemon
/// does not accumulate handles for every connection it ever served. Each
/// join is counted by `conn_reaped` — together with the joins at
/// shutdown, the counter balances against the threads ever spawned.
fn reap_finished(state: &DaemonState, metrics: &ServiceMetrics) {
    let mut conns = state.conns.lock().expect("conns lock");
    let mut live = Vec::with_capacity(conns.len());
    for handle in conns.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
            metrics.conn_reaped.inc();
        } else {
            live.push(handle);
        }
    }
    *conns = live;
}

impl TcpDaemon {
    /// The address the daemon is accepting on (resolves `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service the connections multiplex onto.
    pub fn service(&self) -> &AuditService {
        &self.service
    }

    /// Connections accepted over the daemon's lifetime (a live view over
    /// the `conn_accepted` metric).
    pub fn connections_accepted(&self) -> u64 {
        self.service.metrics().conn_accepted.get()
    }

    /// Connections that ended with a protocol or transport error (a
    /// corrupt frame, a peer vanishing mid-frame, a broken pipe, an idle
    /// timeout). Clean EOFs and acknowledged `Shutdown`s are not errors.
    /// A live view over the `conn_errors` metric.
    pub fn connection_errors(&self) -> u64 {
        self.service.metrics().conn_errors.get()
    }

    /// Connections shed at the [`DaemonOptions::max_conns`] cap with a
    /// `Busy` frame — never counted as accepted or errored. A live view
    /// over the `conn_shed` metric.
    pub fn connections_shed(&self) -> u64 {
        self.service.metrics().conn_shed.get()
    }

    /// Graceful shutdown: stop accepting, wait for every in-flight
    /// connection to end (their submissions complete — the drain
    /// semantics the stress test pins), and return the still-warm
    /// [`AuditService`] plus the final connection tallies (exact once
    /// every connection thread is joined, unlike the live accessors).
    ///
    /// Waits for connections, so close (or `Shutdown`-frame) any client
    /// this caller controls first; a connection held open forever by a
    /// peer blocks shutdown by design — killing its work silently would
    /// violate the drain guarantee.
    pub fn shutdown(mut self) -> DaemonReport {
        self.shutdown_inner();
        // Every connection thread is joined: the snapshot below is final,
        // and the tally fields are just named views into it.
        let snapshot = self.service.metrics_snapshot();
        let connections_accepted = snapshot.counter("conn_accepted");
        let connection_errors = snapshot.counter("conn_errors");
        let connections_shed = snapshot.counter("conn_shed");
        let service = Arc::clone(&self.service);
        drop(self); // only `service` above and the daemon's own Arc remain
        DaemonReport {
            service: match Arc::try_unwrap(service) {
                Ok(service) => service,
                Err(_) => {
                    unreachable!("all daemon threads joined and dropped their service handles")
                }
            },
            connections_accepted,
            connection_errors,
            connections_shed,
            snapshot,
        }
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // `accept()` has no timeout; wake it with a throwaway connection.
        // A wildcard bind (0.0.0.0 / ::) is not connectable everywhere,
        // so target loopback on the bound port in that case. If
        // connecting fails (listener already dead), the accept loop has
        // already returned or will error out and observe `stop`.
        let wake_addr = if self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            SocketAddr::new(loopback, self.addr.port())
        } else {
            self.addr
        };
        let _ = TcpStream::connect(wake_addr);
        let _ = accept.join();
        let conns = std::mem::take(&mut *self.state.conns.lock().expect("conns lock"));
        for handle in conns {
            let _ = handle.join();
            self.service.metrics().conn_reaped.inc();
        }
    }
}

impl Drop for TcpDaemon {
    fn drop(&mut self) {
        self.shutdown_inner();
        // The service Arc drops here; if this is the last handle, the
        // AuditService's own Drop joins its workers.
    }
}
