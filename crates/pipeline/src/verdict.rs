//! Per-session verdicts and fleet-wide aggregation.
//!
//! The aggregation is deliberately deterministic: a [`FleetSummary`] is a
//! pure function of the verdict *set* (order-insensitive counts and
//! extrema; the flagged list sorted by session id), so 1-worker and
//! N-worker runs of the same batch summarize identically.

use std::collections::BTreeMap;

use detectors::{auc, roc, RocPoint};

/// The audit outcome for one session.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditVerdict {
    /// The session's caller-assigned id.
    pub session_id: u64,
    /// Worst relative IPD deviation between observed and reference timing
    /// (1.0 if the session failed to replay or changed its output count).
    pub score: f64,
    /// Whether the score exceeds the batch threshold.
    pub flagged: bool,
    /// Packets the reference replay transmitted.
    pub tx_packets: usize,
    /// Cycles the reference replay executed (throughput accounting).
    pub replayed_cycles: u64,
    /// Per-detector scores (detector name → score) when the batch ran with
    /// [`crate::BatteryMode::Full`]; empty on the default TDR-only path.
    /// The "Sanity" entry is always byte-identical to [`score`](Self::score).
    pub detector_scores: BTreeMap<String, f64>,
    /// Present when the audit replay itself failed.
    pub error: Option<String>,
}

/// Histogram of audit scores over fixed deviation buckets.
///
/// Bucket edges are fractions of the reference IPD: everything below the
/// TDR noise floor lands in the first buckets, channels in the last ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreHistogram {
    /// Count of scores in `[edge[i], edge[i+1])`; the final bucket is
    /// `[0.5, ∞)`.
    pub counts: [u64; EDGES.len()],
}

/// Lower bucket edges (relative deviation).
pub const EDGES: [f64; 8] = [0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5];

impl Default for ScoreHistogram {
    fn default() -> Self {
        ScoreHistogram {
            counts: [0; EDGES.len()],
        }
    }
}

impl ScoreHistogram {
    /// Add one score.
    pub fn add(&mut self, score: f64) {
        let idx = EDGES.iter().rposition(|&e| score >= e).unwrap_or(0);
        self.counts[idx] += 1;
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Human-readable one-line rendering (`[0.5%, 1%): 12` style).
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let hi = EDGES
                .get(i + 1)
                .map(|e| format!("{:.1}%", e * 100.0))
                .unwrap_or_else(|| "inf".to_string());
            parts.push(format!("[{:.1}%, {hi}): {c}", EDGES[i] * 100.0));
        }
        parts.join("  ")
    }
}

/// Mean and maximum of one detector's scores over a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorStats {
    /// Mean score (summed in session-id order for determinism).
    pub mean: f64,
    /// Largest score in the batch.
    pub max: f64,
}

/// Fleet-wide aggregation of a batch's verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Sessions audited.
    pub sessions: u64,
    /// Session ids flagged as covert, sorted ascending.
    pub flagged: Vec<u64>,
    /// Sessions whose audit replay failed outright.
    pub errors: u64,
    /// Distribution of scores.
    pub histogram: ScoreHistogram,
    /// Largest score in the batch.
    pub max_score: f64,
    /// Mean score (over all sessions, summed in session-id order).
    pub mean_score: f64,
    /// Total reference cycles replayed (throughput accounting).
    pub replayed_cycles: u64,
    /// Per-detector aggregates (name → mean/max) over every verdict that
    /// carried a score map; empty on the TDR-only path. Like every other
    /// field, a pure, order-insensitive function of the verdict set.
    pub detector_stats: BTreeMap<String, DetectorStats>,
}

impl FleetSummary {
    /// Aggregate a batch. Input order does not matter: verdicts are
    /// re-sorted by session id before any floating-point accumulation.
    pub fn from_verdicts(verdicts: &[AuditVerdict]) -> Self {
        let mut ordered: Vec<&AuditVerdict> = verdicts.iter().collect();
        ordered.sort_by_key(|v| v.session_id);
        let mut summary = FleetSummary {
            sessions: ordered.len() as u64,
            flagged: Vec::new(),
            errors: 0,
            histogram: ScoreHistogram::default(),
            max_score: 0.0,
            mean_score: 0.0,
            replayed_cycles: 0,
            detector_stats: BTreeMap::new(),
        };
        let mut sum = 0.0;
        let mut det_sums: BTreeMap<&str, (f64, f64, u64)> = BTreeMap::new();
        for v in &ordered {
            if v.flagged {
                summary.flagged.push(v.session_id);
            }
            if v.error.is_some() {
                summary.errors += 1;
            }
            summary.histogram.add(v.score);
            summary.max_score = summary.max_score.max(v.score);
            summary.replayed_cycles += v.replayed_cycles;
            sum += v.score;
            for (name, &s) in &v.detector_scores {
                let e = det_sums.entry(name).or_insert((0.0, f64::NEG_INFINITY, 0));
                e.0 += s;
                e.1 = e.1.max(s);
                e.2 += 1;
            }
        }
        if !ordered.is_empty() {
            summary.mean_score = sum / ordered.len() as f64;
        }
        summary.detector_stats = det_sums
            .into_iter()
            .map(|(name, (s, max, n))| {
                (
                    name.to_string(),
                    DetectorStats {
                        mean: s / n as f64,
                        max,
                    },
                )
            })
            .collect();
        summary
    }
}

/// ROC curve and AUC of a labeled benchmark batch: `covert_ids` is the
/// ground truth, scores come from the verdicts' TDR scores. This is the
/// batch-scale version of the paper's Fig. 8 evaluation, built on
/// `detectors::roc`.
pub fn labeled_roc(
    verdicts: &[AuditVerdict],
    covert_ids: &std::collections::HashSet<u64>,
) -> (Vec<RocPoint>, f64) {
    split_and_score(verdicts, covert_ids, |v| v.score)
}

/// Per-detector labeled ROC/AUC over a benchmark batch — the fleet-scale
/// Fig. 8 report.
///
/// Every detector name appearing in any verdict's score map gets a curve;
/// the TDR detector ("Sanity") always gets one, from the verdict's scalar
/// score, so the function is also meaningful on TDR-only batches.
pub fn labeled_roc_by_detector(
    verdicts: &[AuditVerdict],
    covert_ids: &std::collections::HashSet<u64>,
) -> BTreeMap<String, (Vec<RocPoint>, f64)> {
    let mut names: std::collections::BTreeSet<&str> = verdicts
        .iter()
        .flat_map(|v| v.detector_scores.keys())
        .map(String::as_str)
        .collect();
    names.insert("Sanity");
    names
        .into_iter()
        .map(|name| {
            let result = split_and_score(verdicts, covert_ids, |v| {
                // Fall back to the scalar TDR score for "Sanity" — the two
                // are pinned byte-identical when both exist.
                v.detector_scores.get(name).copied().unwrap_or_else(|| {
                    if name == "Sanity" {
                        v.score
                    } else {
                        0.0
                    }
                })
            });
            (name.to_string(), result)
        })
        .collect()
}

fn split_and_score(
    verdicts: &[AuditVerdict],
    covert_ids: &std::collections::HashSet<u64>,
    score_of: impl Fn(&AuditVerdict) -> f64,
) -> (Vec<RocPoint>, f64) {
    let legit: Vec<f64> = verdicts
        .iter()
        .filter(|v| !covert_ids.contains(&v.session_id))
        .map(&score_of)
        .collect();
    let covert: Vec<f64> = verdicts
        .iter()
        .filter(|v| covert_ids.contains(&v.session_id))
        .map(&score_of)
        .collect();
    let points = roc(&covert, &legit);
    let area = auc(&covert, &legit);
    (points, area)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(id: u64, score: f64, flagged: bool) -> AuditVerdict {
        AuditVerdict {
            session_id: id,
            score,
            flagged,
            tx_packets: 10,
            replayed_cycles: 1_000,
            detector_scores: BTreeMap::new(),
            error: None,
        }
    }

    fn battery_verdict(id: u64, tdr: f64, shape: f64) -> AuditVerdict {
        AuditVerdict {
            detector_scores: [
                ("Sanity".to_string(), tdr),
                ("Shape test".to_string(), shape),
            ]
            .into_iter()
            .collect(),
            ..verdict(id, tdr, tdr > 0.02)
        }
    }

    #[test]
    fn summary_is_order_insensitive() {
        let a = vec![
            verdict(1, 0.001, false),
            verdict(2, 0.30, true),
            verdict(3, 0.015, false),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(
            FleetSummary::from_verdicts(&a),
            FleetSummary::from_verdicts(&b)
        );
    }

    #[test]
    fn summary_counts_and_extrema() {
        let vs = vec![
            verdict(5, 0.001, false),
            verdict(1, 0.30, true),
            AuditVerdict {
                error: Some("boom".into()),
                ..verdict(9, 1.0, true)
            },
        ];
        let s = FleetSummary::from_verdicts(&vs);
        assert_eq!(s.sessions, 3);
        assert_eq!(s.flagged, vec![1, 9]);
        assert_eq!(s.errors, 1);
        assert_eq!(s.max_score, 1.0);
        assert_eq!(s.histogram.total(), 3);
        assert_eq!(s.replayed_cycles, 3_000);
    }

    #[test]
    fn histogram_buckets_scores() {
        let mut h = ScoreHistogram::default();
        h.add(0.0);
        h.add(0.004); // below noise floor
        h.add(0.03); // between 2% and 5%
        h.add(0.75); // last bucket
        h.add(123.0); // still last bucket
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[7], 2);
        assert_eq!(h.total(), 5);
        assert!(h.render().contains("[0.0%, 0.5%): 2"));
    }

    #[test]
    fn summary_aggregates_per_detector_stats() {
        let vs = vec![battery_verdict(1, 0.01, 2.0), battery_verdict(2, 0.30, 4.0)];
        let s = FleetSummary::from_verdicts(&vs);
        assert_eq!(s.detector_stats.len(), 2);
        let shape = &s.detector_stats["Shape test"];
        assert!((shape.mean - 3.0).abs() < 1e-12);
        assert_eq!(shape.max, 4.0);
        let tdr = &s.detector_stats["Sanity"];
        assert!((tdr.mean - 0.155).abs() < 1e-12);
        assert_eq!(tdr.max, 0.30);
        // TDR-only verdicts leave the map empty.
        let s = FleetSummary::from_verdicts(&[verdict(1, 0.1, true)]);
        assert!(s.detector_stats.is_empty());
    }

    #[test]
    fn per_detector_stats_are_order_insensitive() {
        let a = vec![
            battery_verdict(1, 0.001, 1.0),
            battery_verdict(2, 0.25, 5.0),
            battery_verdict(3, 0.013, 2.5),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(
            FleetSummary::from_verdicts(&a),
            FleetSummary::from_verdicts(&b)
        );
    }

    #[test]
    fn labeled_roc_by_detector_covers_every_detector() {
        // TDR separates this batch perfectly, the shape scores are flat.
        let vs = vec![
            battery_verdict(0, 0.001, 3.0),
            battery_verdict(1, 0.002, 3.0),
            battery_verdict(2, 0.25, 3.0),
            battery_verdict(3, 0.40, 3.0),
        ];
        let covert: std::collections::HashSet<u64> = [2, 3].into_iter().collect();
        let by_det = labeled_roc_by_detector(&vs, &covert);
        assert_eq!(by_det.len(), 2);
        assert!((by_det["Sanity"].1 - 1.0).abs() < 1e-9);
        assert!(
            (by_det["Shape test"].1 - 0.5).abs() < 1e-9,
            "all ties → 0.5"
        );
    }

    #[test]
    fn labeled_roc_by_detector_works_on_tdr_only_batches() {
        let vs = vec![verdict(0, 0.001, false), verdict(1, 0.30, true)];
        let covert: std::collections::HashSet<u64> = [1].into_iter().collect();
        let by_det = labeled_roc_by_detector(&vs, &covert);
        assert_eq!(by_det.len(), 1, "only the Sanity curve");
        assert!((by_det["Sanity"].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labeled_roc_separates_perfectly_separable_batch() {
        let vs = vec![
            verdict(0, 0.001, false),
            verdict(1, 0.002, false),
            verdict(2, 0.25, true),
            verdict(3, 0.40, true),
        ];
        let covert: std::collections::HashSet<u64> = [2, 3].into_iter().collect();
        let (_, area) = labeled_roc(&vs, &covert);
        assert!((area - 1.0).abs() < 1e-9, "perfect separation: {area}");
    }
}
