//! Per-session verdicts and fleet-wide aggregation.
//!
//! The aggregation is deliberately deterministic: a [`FleetSummary`] is a
//! pure function of the verdict *set* (order-insensitive counts and
//! extrema; the flagged list sorted by session id), so 1-worker and
//! N-worker runs of the same batch summarize identically.

use detectors::{auc, roc, RocPoint};

/// The audit outcome for one session.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditVerdict {
    /// The session's caller-assigned id.
    pub session_id: u64,
    /// Worst relative IPD deviation between observed and reference timing
    /// (1.0 if the session failed to replay or changed its output count).
    pub score: f64,
    /// Whether the score exceeds the batch threshold.
    pub flagged: bool,
    /// Packets the reference replay transmitted.
    pub tx_packets: usize,
    /// Cycles the reference replay executed (throughput accounting).
    pub replayed_cycles: u64,
    /// Present when the audit replay itself failed.
    pub error: Option<String>,
}

/// Histogram of audit scores over fixed deviation buckets.
///
/// Bucket edges are fractions of the reference IPD: everything below the
/// TDR noise floor lands in the first buckets, channels in the last ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreHistogram {
    /// Count of scores in `[edge[i], edge[i+1])`; the final bucket is
    /// `[0.5, ∞)`.
    pub counts: [u64; EDGES.len()],
}

/// Lower bucket edges (relative deviation).
pub const EDGES: [f64; 8] = [0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5];

impl Default for ScoreHistogram {
    fn default() -> Self {
        ScoreHistogram {
            counts: [0; EDGES.len()],
        }
    }
}

impl ScoreHistogram {
    /// Add one score.
    pub fn add(&mut self, score: f64) {
        let idx = EDGES.iter().rposition(|&e| score >= e).unwrap_or(0);
        self.counts[idx] += 1;
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Human-readable one-line rendering (`[0.5%, 1%): 12` style).
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let hi = EDGES
                .get(i + 1)
                .map(|e| format!("{:.1}%", e * 100.0))
                .unwrap_or_else(|| "inf".to_string());
            parts.push(format!("[{:.1}%, {hi}): {c}", EDGES[i] * 100.0));
        }
        parts.join("  ")
    }
}

/// Fleet-wide aggregation of a batch's verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Sessions audited.
    pub sessions: u64,
    /// Session ids flagged as covert, sorted ascending.
    pub flagged: Vec<u64>,
    /// Sessions whose audit replay failed outright.
    pub errors: u64,
    /// Distribution of scores.
    pub histogram: ScoreHistogram,
    /// Largest score in the batch.
    pub max_score: f64,
    /// Mean score (over all sessions, summed in session-id order).
    pub mean_score: f64,
    /// Total reference cycles replayed (throughput accounting).
    pub replayed_cycles: u64,
}

impl FleetSummary {
    /// Aggregate a batch. Input order does not matter: verdicts are
    /// re-sorted by session id before any floating-point accumulation.
    pub fn from_verdicts(verdicts: &[AuditVerdict]) -> Self {
        let mut ordered: Vec<&AuditVerdict> = verdicts.iter().collect();
        ordered.sort_by_key(|v| v.session_id);
        let mut summary = FleetSummary {
            sessions: ordered.len() as u64,
            flagged: Vec::new(),
            errors: 0,
            histogram: ScoreHistogram::default(),
            max_score: 0.0,
            mean_score: 0.0,
            replayed_cycles: 0,
        };
        let mut sum = 0.0;
        for v in &ordered {
            if v.flagged {
                summary.flagged.push(v.session_id);
            }
            if v.error.is_some() {
                summary.errors += 1;
            }
            summary.histogram.add(v.score);
            summary.max_score = summary.max_score.max(v.score);
            summary.replayed_cycles += v.replayed_cycles;
            sum += v.score;
        }
        if !ordered.is_empty() {
            summary.mean_score = sum / ordered.len() as f64;
        }
        summary
    }
}

/// ROC curve and AUC of a labeled benchmark batch: `covert_ids` is the
/// ground truth, scores come from the verdicts. This is the batch-scale
/// version of the paper's Fig. 8 evaluation, built on `detectors::roc`.
pub fn labeled_roc(
    verdicts: &[AuditVerdict],
    covert_ids: &std::collections::HashSet<u64>,
) -> (Vec<RocPoint>, f64) {
    let legit: Vec<f64> = verdicts
        .iter()
        .filter(|v| !covert_ids.contains(&v.session_id))
        .map(|v| v.score)
        .collect();
    let covert: Vec<f64> = verdicts
        .iter()
        .filter(|v| covert_ids.contains(&v.session_id))
        .map(|v| v.score)
        .collect();
    let points = roc(&covert, &legit);
    let area = auc(&covert, &legit);
    (points, area)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(id: u64, score: f64, flagged: bool) -> AuditVerdict {
        AuditVerdict {
            session_id: id,
            score,
            flagged,
            tx_packets: 10,
            replayed_cycles: 1_000,
            error: None,
        }
    }

    #[test]
    fn summary_is_order_insensitive() {
        let a = vec![
            verdict(1, 0.001, false),
            verdict(2, 0.30, true),
            verdict(3, 0.015, false),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(
            FleetSummary::from_verdicts(&a),
            FleetSummary::from_verdicts(&b)
        );
    }

    #[test]
    fn summary_counts_and_extrema() {
        let vs = vec![
            verdict(5, 0.001, false),
            verdict(1, 0.30, true),
            AuditVerdict {
                error: Some("boom".into()),
                ..verdict(9, 1.0, true)
            },
        ];
        let s = FleetSummary::from_verdicts(&vs);
        assert_eq!(s.sessions, 3);
        assert_eq!(s.flagged, vec![1, 9]);
        assert_eq!(s.errors, 1);
        assert_eq!(s.max_score, 1.0);
        assert_eq!(s.histogram.total(), 3);
        assert_eq!(s.replayed_cycles, 3_000);
    }

    #[test]
    fn histogram_buckets_scores() {
        let mut h = ScoreHistogram::default();
        h.add(0.0);
        h.add(0.004); // below noise floor
        h.add(0.03); // between 2% and 5%
        h.add(0.75); // last bucket
        h.add(123.0); // still last bucket
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[7], 2);
        assert_eq!(h.total(), 5);
        assert!(h.render().contains("[0.0%, 0.5%): 2"));
    }

    #[test]
    fn labeled_roc_separates_perfectly_separable_batch() {
        let vs = vec![
            verdict(0, 0.001, false),
            verdict(1, 0.002, false),
            verdict(2, 0.25, true),
            verdict(3, 0.40, true),
        ];
        let covert: std::collections::HashSet<u64> = [2, 3].into_iter().collect();
        let (_, area) = labeled_roc(&vs, &covert);
        assert!((area - 1.0).abs() < 1e-9, "perfect separation: {area}");
    }
}
