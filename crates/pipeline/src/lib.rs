//! `audit-pipeline` — sharded batch auditing of recorded sessions.
//!
//! The paper's detector (§5.3) audits one log at a time; a cloud provider
//! deploying it (the setting of Aviram et al. and Deterland) has *fleets*
//! of logs per hour. This crate turns the single-session auditor into a
//! batch service:
//!
//! * [`ingest`] — a batch wire format (TDRB, specified in
//!   `docs/FORMATS.md`): length-framed binary event logs (the
//!   `replay::codec` encoding) bundled with each session's id and the
//!   packet timing observed on the wire at the suspect machine. Ingest is
//!   pull-based: [`BatchStream`] decodes sessions one at a time from any
//!   `io::Read` source, so a batch far larger than RAM streams through in
//!   bounded memory;
//! * [`pool`] — a sharded worker pool (std threads + channels, no external
//!   dependencies) that fans the sessions of a batch out across cores;
//!   every worker audits sessions against a [`ReferenceCache`] holding the
//!   known-good binary and file set, so per-session setup cost is one
//!   clone, not one rebuild. [`audit_stream`] couples the pool to a
//!   session stream through a bounded channel with backpressure
//!   ([`AuditConfig::high_water`] caps the resident set);
//! * [`verdict`] — per-session [`AuditVerdict`]s and their deterministic
//!   aggregation into a [`FleetSummary`] (flagged sessions, score
//!   histogram, per-detector stats) plus labeled ROC/AUC — per detector —
//!   over a benchmark batch via `detectors::roc`.
//!
//! Detection defaults to the TDR score alone, but a fleet can attach a
//! [`DetectorBattery`] trained on its clean traces
//! ([`Reference::with_battery`]) and request [`BatteryMode::Full`] to score
//! every session with all five Fig. 8 detectors in the same pass — the
//! battery state is shared across workers behind one `Arc`, and the TDR
//! score stays byte-identical to the TDR-only path.
//!
//! Determinism is a design requirement, not an accident: a session's
//! verdict depends only on its log, its observed timing, and the batch
//! seed — never on which worker audited it or in what order. The test
//! suite pins this (1 worker and N workers must produce identical verdict
//! sets), because a detector whose verdict depends on scheduling would be
//! unauditable itself. The same holds across ingest modes: streamed and
//! materialized decode of the same TDRB bytes produce byte-identical
//! fleet summaries, regardless of read-buffer size, worker count, or
//! high-water mark.

#![warn(missing_docs)]

pub mod cache;
pub mod control;
pub mod coord;
pub mod ingest;
pub mod net;
pub mod obs;
pub mod pool;
pub mod registry;
pub mod service;
pub mod verdict;

use std::sync::Arc;

use jbc::Program;
use machine::MachineConfig;
use replay::EventLog;
use vm::VmConfig;

pub use cache::ReferenceCache;
pub use control::{
    AckStatus, BatchOutcome, BatchSummary, BatteryOutcome, BusyScope, Client, ControlError,
    ControlFrame, PutOutcome,
};
pub use coord::{serve_coordinator, CoordReport, Coordinator};
pub use detectors::DetectorBattery;
pub use ingest::{BatchStream, IngestError};
pub use jbc::ReferenceId;
pub use net::{serve_tcp, serve_tcp_with, DaemonOptions, DaemonReport, TcpDaemon};
pub use obs::{MetricsSnapshot, TraceEvent, TraceKind};
pub use pool::{audit_batch, audit_batch_streaming, audit_stream, BatchReport, StreamReport};
pub use registry::{ReferenceRegistry, RegistryError, RegistryLoad, DEFAULT_REFERENCE_BUDGET};
pub use service::{AuditService, BatchTicket, ServiceBuilder, TenantQuota};
pub use verdict::{AuditVerdict, DetectorStats, FleetSummary, ScoreHistogram};

/// The reference environment sessions are audited against: the known-good
/// binary plus the machine/VM configuration and stable-storage contents of
/// the reference machine, and optionally a trained detector battery shared
/// by every worker.
#[derive(Debug, Clone)]
pub struct Reference {
    /// The known-good program.
    pub program: Arc<Program>,
    /// Reference machine configuration (normally `MachineConfig::sanity()`).
    pub machine: MachineConfig,
    /// VM configuration.
    pub vm: VmConfig,
    /// Stable-storage contents, installed into every audit replay (storage
    /// is machine state, so the reference must see the same files).
    pub files: Vec<Vec<u8>>,
    /// A detector battery trained on this fleet's clean traces, shared
    /// (one `Arc`, not one copy per worker) by every [`ReferenceCache`].
    /// `None` — the default — leaves the pipeline TDR-only; sessions gain
    /// per-detector score maps only when a battery is attached *and*
    /// [`AuditConfig::battery`] asks for [`BatteryMode::Full`].
    pub battery: Option<Arc<DetectorBattery>>,
}

impl Reference {
    /// Reference over `program` with the full Sanity machine configuration
    /// and no files.
    pub fn new(program: Arc<Program>) -> Self {
        Reference {
            program,
            machine: MachineConfig::sanity(),
            vm: VmConfig::default(),
            files: Vec::new(),
            battery: None,
        }
    }

    /// Attach stable-storage contents.
    pub fn with_files(mut self, files: Vec<Vec<u8>>) -> Self {
        self.files = files;
        self
    }

    /// Attach a trained detector battery (see [`DetectorBattery::trained`]).
    ///
    /// # Panics
    ///
    /// Panics if the battery is untrained: scoring sessions against
    /// uninitialized baselines would produce garbage verdicts silently.
    pub fn with_battery(mut self, battery: DetectorBattery) -> Self {
        assert!(
            battery.is_trained(),
            "train the battery on clean traces before attaching it"
        );
        self.battery = Some(Arc::new(battery));
        self
    }
}

/// One session submitted for audit.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditJob {
    /// Caller-assigned session identifier (reported back in the verdict
    /// and used to derive the session's deterministic replay seed).
    pub session_id: u64,
    /// The suspect machine's event log.
    pub log: EventLog,
    /// Cycles between consecutive transmitted packets, as captured on the
    /// wire at the suspect machine.
    pub observed_ipds: Vec<u64>,
}

/// Which detectors score each session.
///
/// This is the `Copy`-able half of the battery configuration — the trained
/// state itself rides on [`Reference::battery`], so `AuditConfig` stays a
/// plain value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatteryMode {
    /// The TDR detector only — the pre-battery behavior, and the default.
    /// Verdict score maps stay empty.
    #[default]
    TdrOnly,
    /// Score every session with the full five-detector battery on
    /// [`Reference::battery`]. Requires one to be attached (the audit
    /// panics otherwise — a missing battery must not silently degrade the
    /// fleet report to TDR-only). The TDR score and flagging are
    /// byte-identical to [`BatteryMode::TdrOnly`].
    Full,
}

/// Batch-audit tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// TDR detector threshold: flag sessions whose worst relative IPD
    /// deviation exceeds this. The paper's noise floor is 1.85% (§6.4), so
    /// the default is 2%.
    pub threshold: f64,
    /// Base seed for the reference machines' irreducible noise. Each
    /// session replays under a seed derived from this and its session id,
    /// so verdicts are independent of sharding.
    pub run_seed: u64,
    /// Streaming ingest memory bound: the maximum number of sessions
    /// resident at once (decoded but not yet audited) in
    /// [`audit_stream`]. Decode of the next session blocks until the
    /// resident set drops below this mark. `0` means the default of 8.
    /// Has no effect on the materialized [`audit_batch`] path.
    pub high_water: usize,
    /// Which detectors score each session (default: TDR only).
    pub battery: BatteryMode,
}

/// Default [`AuditConfig::high_water`]: sessions in flight during
/// streaming ingest.
pub const DEFAULT_HIGH_WATER: usize = 8;

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            workers: 0,
            threshold: 0.02,
            run_seed: 0x7d12_aa64_5eed_0001,
            high_water: DEFAULT_HIGH_WATER,
            battery: BatteryMode::TdrOnly,
        }
    }
}

/// A structurally invalid [`AuditConfig`], rejected at service
/// construction.
///
/// The one-shot entry points historically resolved `0` values through
/// [`AuditConfig::resolved_workers`]/[`AuditConfig::resolved_high_water`]
/// deep inside the pool; the service API resolves once at the front door
/// instead and rejects configurations that would otherwise silently fall
/// back ([`service::ServiceBuilder::build`] calls
/// [`AuditConfig::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0` reached service construction. The one-shot shims
    /// resolve `0` to the core count before building; a service must be
    /// given an explicit positive worker count.
    ZeroWorkers,
    /// `high_water == 0` reached service construction: a zero residency
    /// bound would deadlock the streaming feeder.
    ZeroHighWater,
    /// [`BatteryMode::Full`] was requested but no trained battery is
    /// attached to the reference.
    MissingBattery,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "workers must be positive (0 is not resolved at service construction; use ServiceBuilder::workers or AuditConfig::resolved_workers)"),
            ConfigError::ZeroHighWater => write!(f, "high_water must be positive (a zero residency bound would deadlock streaming ingest)"),
            ConfigError::MissingBattery => write!(f, "BatteryMode::Full needs a trained battery on the Reference (Reference::with_battery)"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl AuditConfig {
    /// Check this configuration is structurally valid for service
    /// construction: every knob explicit, nothing left to the `resolved_*`
    /// fallbacks. Battery availability is checked separately by the
    /// builder (it lives on the [`Reference`], not here).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.high_water == 0 {
            return Err(ConfigError::ZeroHighWater);
        }
        Ok(())
    }

    /// The per-session replay seed: a SplitMix64-style mix of the batch
    /// seed and the session id, so sessions are decorrelated but the
    /// mapping is stable across runs and worker counts.
    pub fn session_seed(&self, session_id: u64) -> u64 {
        let mut z = self
            .run_seed
            .wrapping_add(session_id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The number of workers after resolving `0` to the core count.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The streaming high-water mark after resolving `0` to the default.
    pub fn resolved_high_water(&self) -> usize {
        if self.high_water > 0 {
            self.high_water
        } else {
            DEFAULT_HIGH_WATER
        }
    }
}
