//! `netsim` — network path simulation and packet-trace utilities.
//!
//! The paper's covert-channel experiments place the NFS client and server at
//! two different universities (≈10 ms RTT; jitter percentiles p50 = 0.18 ms,
//! p90 = 0.80 ms, p99 = 3.91 ms, §6.6) and argue in §6.9 that WAN jitter
//! swamps TDR's residual noise. This crate provides:
//!
//! * [`JitterModel`] — percentile-calibrated jitter (shifted lognormal),
//!   with presets for the paper's inter-university path and the broadband
//!   profile (§6.9's 2.5 ms median, citing the residential-broadband study);
//! * [`NetworkPath`] — RTT + jitter, applied per packet;
//! * [`PacketTrace`] — a timestamped packet sequence with inter-packet-delay
//!   (IPD) utilities;
//! * [`measure_jitter`] — the ping-style measurement used to report
//!   percentiles;
//! * [`stats`] — small statistics helpers shared by the experiments.
//!
//! All times are picoseconds (`u64` cycles are converted by the harness).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

pub mod stats;

/// One direction of a network path: per-packet delay = `base + jitter`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JitterModel {
    /// Median jitter, picoseconds.
    pub median_ps: u64,
    /// Lognormal shape parameter (σ of the underlying normal).
    pub sigma: f64,
}

impl JitterModel {
    /// Calibrate a lognormal to hit the given p50 and p90 (ps).
    ///
    /// `ln X ~ N(ln p50, σ)` with `σ = ln(p90/p50) / z90`.
    pub fn from_percentiles(p50_ps: u64, p90_ps: u64) -> Self {
        const Z90: f64 = 1.2815515655446004;
        let sigma = (p90_ps as f64 / p50_ps as f64).ln() / Z90;
        JitterModel {
            median_ps: p50_ps,
            sigma,
        }
    }

    /// The paper's inter-university path (p50 0.18 ms, p90 0.80 ms).
    pub fn university() -> Self {
        JitterModel::from_percentiles(180_000_000, 800_000_000)
    }

    /// Residential broadband (§6.9: median ≈ 2.5 ms).
    pub fn broadband() -> Self {
        JitterModel::from_percentiles(2_500_000_000, 7_000_000_000)
    }

    /// An ideal, jitter-free path.
    pub fn none() -> Self {
        JitterModel {
            median_ps: 0,
            sigma: 0.0,
        }
    }

    /// Draw one jitter sample, in picoseconds.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        if self.median_ps == 0 {
            return 0;
        }
        // Box-Muller on a seeded rng keeps everything reproducible.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = (self.median_ps as f64) * (self.sigma * z).exp();
        x.min(1e15) as u64 // Cap at 1000 s to avoid pathological tails.
    }

    /// Theoretical quantile of the model (for tests and reporting).
    pub fn quantile(&self, q: f64) -> u64 {
        let z = stats::normal_quantile(q);
        ((self.median_ps as f64) * (self.sigma * z).exp()) as u64
    }
}

/// A unidirectional network path.
#[derive(Debug)]
pub struct NetworkPath {
    /// One-way base latency (half the RTT), picoseconds.
    pub base_ps: u64,
    /// The jitter model.
    pub jitter: JitterModel,
    rng: StdRng,
}

impl NetworkPath {
    /// Create a path with the given RTT and jitter; `seed` individualizes
    /// the run.
    pub fn new(rtt_ps: u64, jitter: JitterModel, seed: u64) -> Self {
        NetworkPath {
            base_ps: rtt_ps / 2,
            jitter,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The paper's inter-university path (10 ms RTT).
    pub fn university(seed: u64) -> Self {
        NetworkPath::new(10_000_000_000, JitterModel::university(), seed)
    }

    /// One-way delay for the next packet, picoseconds.
    pub fn one_way_delay(&mut self) -> u64 {
        self.base_ps + self.jitter.sample(&mut self.rng)
    }

    /// Propagate a sender-side trace to the receiver. Reordering is
    /// resolved FIFO (packets queue behind the previous arrival), as TCP
    /// in-order delivery would present them.
    pub fn transmit(&mut self, trace: &PacketTrace) -> PacketTrace {
        let mut out = Vec::with_capacity(trace.times_ps.len());
        let mut last_arrival = 0u128;
        for &t in &trace.times_ps {
            let arrival = t + self.one_way_delay() as u128;
            let arrival = arrival.max(last_arrival);
            last_arrival = arrival;
            out.push(arrival);
        }
        PacketTrace {
            times_ps: out,
            sizes: trace.sizes.clone(),
        }
    }
}

/// A timestamped packet sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PacketTrace {
    /// Transmission (or arrival) times in picoseconds, non-decreasing.
    pub times_ps: Vec<u128>,
    /// Payload sizes in bytes (parallel to `times_ps`).
    pub sizes: Vec<u32>,
}

impl PacketTrace {
    /// Build from times only (sizes default to 0).
    pub fn from_times(times_ps: Vec<u128>) -> Self {
        let sizes = vec![0; times_ps.len()];
        PacketTrace { times_ps, sizes }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.times_ps.len()
    }

    /// True if the trace has no packets.
    pub fn is_empty(&self) -> bool {
        self.times_ps.is_empty()
    }

    /// Inter-packet delays, picoseconds.
    pub fn ipds(&self) -> Vec<u64> {
        self.times_ps
            .windows(2)
            .map(|w| (w[1] - w[0]) as u64)
            .collect()
    }

    /// Duration from first to last packet, picoseconds.
    pub fn duration_ps(&self) -> u128 {
        match (self.times_ps.first(), self.times_ps.last()) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }

    /// Rebuild a trace from a start time and IPD sequence.
    pub fn from_ipds(start_ps: u128, ipds: &[u64]) -> Self {
        let mut t = start_ps;
        let mut times = vec![t];
        for &d in ipds {
            t += d as u128;
            times.push(t);
        }
        PacketTrace::from_times(times)
    }
}

/// Ping-style jitter measurement: returns `(p50, p90, p99)` of `n` samples,
/// in picoseconds — the measurement reported in §6.6.
pub fn measure_jitter(path: &mut NetworkPath, n: usize) -> (u64, u64, u64) {
    let mut xs: Vec<u64> = (0..n).map(|_| path.jitter.sample(&mut path.rng)).collect();
    xs.sort_unstable();
    let pick = |q: f64| xs[(((xs.len() - 1) as f64) * q) as usize];
    (pick(0.50), pick(0.90), pick(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_percentiles_roughly_match_paper() {
        let mut path = NetworkPath::university(7);
        let (p50, p90, p99) = measure_jitter(&mut path, 20_000);
        // Paper: 0.18 ms / 0.80 ms / 3.91 ms. The lognormal matches p50 and
        // p90 by construction; p99 lands in the right regime (> 2 ms).
        assert!((p50 as f64 / 180_000_000.0 - 1.0).abs() < 0.10, "{p50}");
        assert!((p90 as f64 / 800_000_000.0 - 1.0).abs() < 0.15, "{p90}");
        assert!(p99 > 2_000_000_000, "heavy tail: {p99}");
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let mut a = NetworkPath::university(1);
        let mut b = NetworkPath::university(1);
        for _ in 0..100 {
            assert_eq!(a.one_way_delay(), b.one_way_delay());
        }
    }

    #[test]
    fn transmit_preserves_order_and_adds_latency() {
        let tx = PacketTrace::from_ipds(0, &[1_000_000; 50]);
        let mut path = NetworkPath::university(3);
        let rx = path.transmit(&tx);
        assert_eq!(rx.len(), tx.len());
        for (a, b) in tx.times_ps.iter().zip(rx.times_ps.iter()) {
            assert!(b >= &(a + 5_000_000_000u128), "≥ half-RTT later");
        }
        for w in rx.times_ps.windows(2) {
            assert!(w[1] >= w[0], "FIFO order");
        }
    }

    #[test]
    fn ipds_roundtrip() {
        let ipds = vec![5, 10, 15, 20];
        let t = PacketTrace::from_ipds(100, &ipds);
        assert_eq!(t.ipds(), ipds);
        assert_eq!(t.duration_ps(), 50);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn no_jitter_model_is_silent() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(JitterModel::none().sample(&mut rng), 0);
    }

    #[test]
    fn quantile_matches_sampling() {
        let m = JitterModel::university();
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs: Vec<u64> = (0..50_000).map(|_| m.sample(&mut rng)).collect();
        xs.sort_unstable();
        let emp_p50 = xs[xs.len() / 2];
        let theo_p50 = m.quantile(0.5);
        assert!((emp_p50 as f64 / theo_p50 as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn broadband_is_much_worse_than_university() {
        assert!(JitterModel::broadband().median_ps > 10 * JitterModel::university().median_ps);
    }
}
