//! Statistics helpers shared by the experiments and detectors.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `q`-quantile (0..=1) of `xs` by nearest-rank on a sorted copy.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    v[idx]
}

/// Relative spread: `(max - min) / min`, the "variance" metric of Fig. 2 and
/// Fig. 6 (difference between the longest and shortest execution, normalized
/// to the fastest).
pub fn relative_spread(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if min <= 0.0 {
        return 0.0;
    }
    (max - min) / min
}

/// Inverse CDF of the standard normal (Acklam's rational approximation).
///
/// Max absolute error ≈ 1.15e-9 over (0, 1); ample for percentile
/// calibration.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs 0 < p < 1");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Empirical CDF evaluation: fraction of `sorted` ≤ `x`.
/// `sorted` must be ascending.
pub fn edf(sorted: &[f64], x: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.partition_point(|&v| v <= x);
    n as f64 / sorted.len() as f64
}

/// Two-sample Kolmogorov-Smirnov distance. Both inputs are sorted copies.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    ks_distance_sorted(&sa, &sb)
}

/// [`ks_distance`] for inputs that are **already sorted ascending** — skips
/// the copy-and-sort prefix, same arithmetic, bit-identical result. This is
/// the batched-scoring fast path: a detector battery sorts each test trace
/// once and evaluates it against a pooled sample that was sorted at train
/// time.
pub fn ks_distance_sorted(sa: &[f64], sb: &[f64]) -> f64 {
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let mut d: f64 = 0.0;
    for &x in sa.iter().chain(sb.iter()) {
        d = d.max((edf(sa, x) - edf(sb, x)).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f64> = (0..=100).map(|k| k as f64).collect();
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
    }

    #[test]
    fn relative_spread_matches_figure_definition() {
        // Fastest 10, slowest 13 → 30%.
        assert!((relative_spread(&[10.0, 11.0, 13.0]) - 0.3).abs() < 1e-12);
        assert_eq!(relative_spread(&[5.0]), 0.0);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.9) - 1.2815515655446004).abs() < 1e-6);
        assert!((normal_quantile(0.99) - 2.3263478740408408).abs() < 1e-6);
        assert!((normal_quantile(0.1) + 1.2815515655446004).abs() < 1e-6);
    }

    #[test]
    fn ks_distance_sorted_matches_unsorted_entry() {
        let a = [3.0, 1.0, 2.0, 9.0, 4.5];
        let b = [8.0, 2.5, 2.5, 0.5];
        let mut sa = a.to_vec();
        let mut sb = b.to_vec();
        sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
        sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(
            ks_distance(&a, &b).to_bits(),
            ks_distance_sorted(&sa, &sb).to_bits()
        );
        assert_eq!(ks_distance_sorted(&[], &sb), 0.0);
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_distance(&a, &a), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        assert_eq!(ks_distance(&a, &b), 1.0);
    }

    #[test]
    fn edf_steps() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(edf(&s, 0.5), 0.0);
        assert_eq!(edf(&s, 2.0), 0.5);
        assert_eq!(edf(&s, 9.0), 1.0);
    }
}
