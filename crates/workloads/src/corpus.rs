//! Seeded corpus of generated guest programs for differential testing.
//!
//! The determinism suite (`tests/determinism_goldens.rs`) replays every
//! corpus program through the interpreter and machine model and compares
//! cycle counts, IPDs, console output, and verdict bytes against goldens
//! recorded from a known-good build. The generator therefore aims for
//! *coverage*, not realism: each program mixes integer/long/double
//! arithmetic, array traffic, helper-function calls, branchy mixing, and a
//! packet-transmission loop whose inter-packet delays depend on the
//! computed values — so a single wrong opcode result shifts an IPD and
//! fails the golden.
//!
//! Generation is a pure function of the seed (a `StdRng` stream), like
//! [`crate::nfs::make_files`].

use jbc::hll::{dsl::*, Expr, HTy, Module};
use jbc::{ElemTy, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of programs in the pinned golden corpus.
pub const GOLDEN_CORPUS_SIZE: usize = 6;

/// Seed of the pinned golden corpus (programs `corpus_program(SEED + k)`).
pub const GOLDEN_CORPUS_SEED: u64 = 0x5eed_c0de;

/// The pinned corpus: [`GOLDEN_CORPUS_SIZE`] programs starting at
/// [`GOLDEN_CORPUS_SEED`].
pub fn golden_corpus() -> Vec<Program> {
    (0..GOLDEN_CORPUS_SIZE as u64)
        .map(|k| corpus_program(GOLDEN_CORPUS_SEED + k))
        .collect()
}

/// Generate one corpus program from `seed`. Deterministic; always
/// verifies and terminates (all loops have literal bounds).
pub fn corpus_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);

    let int_iters = rng.gen_range(300..1200);
    let dbl_iters = rng.gen_range(100..500);
    let arr_len = rng.gen_range(64..512);
    let call_iters = rng.gen_range(50..200);
    let sends = rng.gen_range(6..12);
    let delay_base = rng.gen_range(2_000..12_000);
    let delay_mask = [255, 511, 1023, 2047][rng.gen_range(0..4)];
    let use_sqrt = rng.gen_bool(0.5);
    let use_sin = rng.gen_bool(0.5);
    let c1 = rng.gen_range(3..97);
    let c2 = rng.gen_range(5..31);
    let int_op = rng.gen_range(0..4u32);
    let dbl_op = rng.gen_range(0..3u32);

    let mut m = Module::new("Corpus");
    m.native("net_send", &[HTy::Arr(ElemTy::I8), HTy::I32], None);
    m.native("delay_cycles", &[HTy::I64], None);
    m.native("println_i", &[HTy::I32], None);
    m.native("println_l", &[HTy::I64], None);
    m.native("println_d", &[HTy::F64], None);
    m.native("math_sqrt", &[HTy::F64], Some(HTy::F64));
    m.native("math_sin", &[HTy::F64], Some(HTy::F64));

    // A branchy helper: exercises call/return, if/else cascades, rem/div.
    m.func(fn_ret(
        "mix",
        vec![("x", HTy::I32)],
        HTy::I32,
        vec![
            if_(
                lt(rem(var("x"), i(3)), i(1)),
                vec![ret(add(mul(var("x"), i(c1)), i(c2)))],
                vec![],
            ),
            if_(
                lt(rem(var("x"), i(3)), i(2)),
                vec![ret(bxor(var("x"), shl(var("x"), i(3))))],
                vec![],
            ),
            ret(sub(shr(var("x"), i(1)), i(c2))),
        ],
    ));

    // Integer compute: the op is seed-chosen so different corpus members
    // stress different arithmetic handlers.
    let int_step = |acc: Expr, k: Expr| -> Expr {
        match int_op {
            0 => add(acc, mul(k, i(c1))),
            1 => bxor(acc, add(shl(k, i(2)), i(c2))),
            2 => add(acc, rem(add(k, i(c2)), i(c1))),
            _ => sub(bor(acc, i(1)), ushr(k, i(1))),
        }
    };
    let dbl_step = |acc: Expr, k: Expr| -> Expr {
        let kd = add(i2d(k), d(1.5));
        match dbl_op {
            0 => add(acc, mul(kd, d(0.25))),
            1 => add(acc, div(d(c1 as f64), kd)),
            _ => sub(mul(acc, d(0.999)), kd),
        }
    };

    let mut body = vec![
        // --- integer/long section ---
        let_("acc", i(seed as i32 & 0xffff)),
        let_("lacc", l(0)),
        for_(
            "k1",
            i(0),
            i(int_iters),
            vec![
                set("acc", int_step(var("acc"), var("k1"))),
                set(
                    "lacc",
                    add(var("lacc"), cast(HTy::I64, band(var("acc"), i(0xffff)))),
                ),
            ],
        ),
        // --- double section ---
        let_("dacc", d(1.0)),
        for_(
            "k2",
            i(0),
            i(dbl_iters),
            vec![set("dacc", dbl_step(var("dacc"), var("k2")))],
        ),
    ];
    if use_sqrt {
        body.push(set(
            "dacc",
            math1("math_sqrt", add(mul(var("dacc"), var("dacc")), d(1.0))),
        ));
    }
    if use_sin {
        body.push(set(
            "dacc",
            add(var("dacc"), math1("math_sin", var("dacc"))),
        ));
    }
    body.extend([
        // --- array section: write then read-sum an int array ---
        let_("a", newarr(ElemTy::I32, i(arr_len))),
        for_(
            "k3",
            i(0),
            i(arr_len),
            vec![set_idx(
                var("a"),
                var("k3"),
                add(var("acc"), mul(var("k3"), i(7))),
            )],
        ),
        let_("asum", i(0)),
        for_(
            "k4",
            i(0),
            i(arr_len),
            vec![set("asum", bxor(var("asum"), idx(var("a"), var("k4"))))],
        ),
        // --- call section ---
        for_(
            "k5",
            i(0),
            i(call_iters),
            vec![set("asum", call("mix", vec![add(var("asum"), var("k5"))]))],
        ),
        // --- transmission: IPDs depend on every section above ---
        let_("out", newarr(ElemTy::I8, i(8))),
        for_(
            "s",
            i(0),
            i(sends),
            vec![
                set("acc", call("mix", vec![bxor(var("acc"), var("asum"))])),
                set_idx(var("out"), i(0), band(var("acc"), i(0xff))),
                set_idx(var("out"), i(1), band(shr(var("acc"), i(8)), i(0xff))),
                set_idx(var("out"), i(2), band(var("asum"), i(0xff))),
                set_idx(var("out"), i(3), band(var("s"), i(0xff))),
                expr(native(
                    "delay_cycles",
                    vec![cast(
                        HTy::I64,
                        add(i(delay_base), band(var("acc"), i(delay_mask))),
                    )],
                )),
                expr(native("net_send", vec![var("out"), i(8)])),
            ],
        ),
        // --- console fingerprint ---
        expr(native("println_i", vec![var("acc")])),
        expr(native("println_i", vec![var("asum")])),
        expr(native("println_l", vec![var("lacc")])),
        expr(native("println_d", vec![var("dacc")])),
    ]);

    m.func(fn_void("main", vec![], body));
    m.compile().expect("corpus program compiles")
}

fn math1(name: &str, e: Expr) -> Expr {
    native(name, vec![e])
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbc::verify;

    #[test]
    fn golden_corpus_compiles_and_verifies() {
        let ps = golden_corpus();
        assert_eq!(ps.len(), GOLDEN_CORPUS_SIZE);
        for p in &ps {
            verify(p).expect("corpus program verifies");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = corpus_program(42);
        let b = corpus_program(42);
        assert_eq!(a.total_code_len(), b.total_code_len());
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let lens: Vec<usize> = (0..8).map(|s| corpus_program(s).total_code_len()).collect();
        assert!(
            lens.iter().any(|&l| l != lens[0]),
            "all seeds produced identical code sizes: {lens:?}"
        );
    }
}
