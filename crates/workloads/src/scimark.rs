//! SciMark 2.0 kernels (Table 2, Fig. 6).
//!
//! Faithful ports of the five NIST SciMark computational kernels to the HLL
//! front-end: fast Fourier transform, Jacobi successive over-relaxation,
//! Monte Carlo integration, sparse matrix multiply, and dense LU
//! factorization. Each kernel prints a checksum so tests can validate the
//! numerics, and takes its problem size as a build parameter.

use jbc::hll::{dsl::*, HTy, Module, Stmt};
use jbc::{ElemTy, Program};

/// The five kernels, in the paper's Table 2 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Jacobi successive over-relaxation.
    Sor,
    /// Sparse matrix multiply (CRS).
    Smm,
    /// Monte Carlo π integration.
    Mc,
    /// Complex-to-complex FFT with validation pass.
    Fft,
    /// Dense LU factorization with partial pivoting.
    Lu,
}

impl Kernel {
    /// All kernels in Table 2 row order.
    pub fn all() -> [Kernel; 5] {
        [
            Kernel::Sor,
            Kernel::Smm,
            Kernel::Mc,
            Kernel::Fft,
            Kernel::Lu,
        ]
    }

    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Sor => "SOR",
            Kernel::Smm => "SMM",
            Kernel::Mc => "MC",
            Kernel::Fft => "FFT",
            Kernel::Lu => "LU",
        }
    }

    /// Build the kernel's program at a small (sweep-friendly) size.
    pub fn program_small(self) -> Program {
        match self {
            Kernel::Sor => sor_program(32, 12),
            Kernel::Smm => smm_program(400, 400, 5, 8),
            Kernel::Mc => mc_program(6_000),
            Kernel::Fft => fft_program(256),
            Kernel::Lu => lu_program(28),
        }
    }

    /// Build the kernel's program at the paper-like (large) size.
    pub fn program_full(self) -> Program {
        match self {
            Kernel::Sor => sor_program(100, 30),
            Kernel::Smm => smm_program(1000, 1000, 5, 25),
            Kernel::Mc => mc_program(100_000),
            Kernel::Fft => fft_program(1024),
            Kernel::Lu => lu_program(100),
        }
    }
}

fn println_d_decl(m: &mut Module) {
    m.native("println_d", &[HTy::F64], None);
}

/// Jacobi SOR on an `n × n` grid, `iters` sweeps, ω = 1.25.
pub fn sor_program(n: i32, iters: i32) -> Program {
    let mut m = Module::new("SOR");
    println_d_decl(&mut m);
    m.func(fn_void(
        "main",
        vec![],
        vec![
            let_("g", newarr(ElemTy::F64, i(n * n))),
            // Deterministic initialization.
            for_(
                "ii",
                i(0),
                i(n * n),
                vec![set_idx(
                    var("g"),
                    var("ii"),
                    mul(i2d(rem(var("ii"), i(17))), d(0.25)),
                )],
            ),
            let_("omega_over_four", d(1.25 / 4.0)),
            let_("one_minus_omega", d(1.0 - 1.25)),
            for_(
                "it",
                i(0),
                i(iters),
                vec![for_(
                    "r",
                    i(1),
                    i(n - 1),
                    vec![
                        let_("row", mul(var("r"), i(n))),
                        for_(
                            "c",
                            i(1),
                            i(n - 1),
                            vec![set_idx(
                                var("g"),
                                add(var("row"), var("c")),
                                add(
                                    mul(
                                        var("omega_over_four"),
                                        add(
                                            add(
                                                idx(var("g"), sub(add(var("row"), var("c")), i(n))),
                                                idx(var("g"), add(add(var("row"), var("c")), i(n))),
                                            ),
                                            add(
                                                idx(var("g"), sub(add(var("row"), var("c")), i(1))),
                                                idx(var("g"), add(add(var("row"), var("c")), i(1))),
                                            ),
                                        ),
                                    ),
                                    mul(
                                        var("one_minus_omega"),
                                        idx(var("g"), add(var("row"), var("c"))),
                                    ),
                                ),
                            )],
                        ),
                    ],
                )],
            ),
            // Checksum: center cell.
            expr(native(
                "println_d",
                vec![idx(var("g"), i(n / 2 * n + n / 2))],
            )),
        ],
    ));
    m.compile().expect("SOR compiles")
}

/// Sparse matrix multiply `y = A·x`, CRS with `rows × cols`, `nz` nonzeros
/// per row, `iters` multiplications.
pub fn smm_program(rows: i32, cols: i32, nz: i32, iters: i32) -> Program {
    let mut m = Module::new("SMM");
    println_d_decl(&mut m);
    m.func(fn_void(
        "main",
        vec![],
        vec![
            let_("val", newarr(ElemTy::F64, i(rows * nz))),
            let_("col", newarr(ElemTy::I32, i(rows * nz))),
            let_("x", newarr(ElemTy::F64, i(cols))),
            let_("y", newarr(ElemTy::F64, i(rows))),
            // Structured sparse pattern, like SciMark's stencil-ish layout.
            for_(
                "r0",
                i(0),
                i(rows),
                vec![for_(
                    "k0",
                    i(0),
                    i(nz),
                    vec![
                        let_("p", add(mul(var("r0"), i(nz)), var("k0"))),
                        set_idx(
                            var("col"),
                            var("p"),
                            rem(add(var("r0"), mul(var("k0"), i(cols / nz))), i(cols)),
                        ),
                        set_idx(
                            var("val"),
                            var("p"),
                            add(d(1.0), mul(i2d(rem(var("p"), i(7))), d(0.25))),
                        ),
                    ],
                )],
            ),
            for_(
                "j0",
                i(0),
                i(cols),
                vec![set_idx(
                    var("x"),
                    var("j0"),
                    add(d(0.5), i2d(rem(var("j0"), i(3)))),
                )],
            ),
            for_(
                "it",
                i(0),
                i(iters),
                vec![for_(
                    "r",
                    i(0),
                    i(rows),
                    vec![
                        let_("sum", d(0.0)),
                        for_(
                            "k",
                            i(0),
                            i(nz),
                            vec![
                                let_("p2", add(mul(var("r"), i(nz)), var("k"))),
                                set(
                                    "sum",
                                    add(
                                        var("sum"),
                                        mul(
                                            idx(var("val"), var("p2")),
                                            idx(var("x"), idx(var("col"), var("p2"))),
                                        ),
                                    ),
                                ),
                            ],
                        ),
                        set_idx(var("y"), var("r"), var("sum")),
                    ],
                )],
            ),
            // Checksum: Σy.
            let_("total", d(0.0)),
            for_(
                "r2",
                i(0),
                i(rows),
                vec![set("total", add(var("total"), idx(var("y"), var("r2"))))],
            ),
            expr(native("println_d", vec![var("total")])),
        ],
    ));
    m.compile().expect("SMM compiles")
}

/// Monte Carlo π with `samples` points and a Park-Miller LCG.
pub fn mc_program(samples: i32) -> Program {
    let mut m = Module::new("MC");
    println_d_decl(&mut m);
    m.func(fn_void(
        "main",
        vec![],
        vec![
            let_("seed", l(113)),
            let_("hits", i(0)),
            for_(
                "k",
                i(0),
                i(samples),
                vec![
                    set("seed", rem(mul(var("seed"), l(16807)), l(2147483647))),
                    let_("x", div(cast(HTy::F64, var("seed")), d(2147483647.0))),
                    set("seed", rem(mul(var("seed"), l(16807)), l(2147483647))),
                    let_("y", div(cast(HTy::F64, var("seed")), d(2147483647.0))),
                    if_(
                        le(
                            add(mul(var("x"), var("x")), mul(var("y"), var("y"))),
                            d(1.0),
                        ),
                        vec![set("hits", add(var("hits"), i(1)))],
                        vec![],
                    ),
                ],
            ),
            expr(native(
                "println_d",
                vec![div(mul(i2d(var("hits")), d(4.0)), i2d(i(samples)))],
            )),
        ],
    ));
    m.compile().expect("MC compiles")
}

/// Complex FFT of size `n` (power of two): forward, inverse, and RMS
/// validation against the original input.
pub fn fft_program(n: i32) -> Program {
    assert!(n > 0 && (n & (n - 1)) == 0, "FFT size must be a power of 2");
    let mut m = Module::new("FFT");
    println_d_decl(&mut m);
    m.native("math_sin", &[HTy::F64], Some(HTy::F64));
    m.native("math_cos", &[HTy::F64], Some(HTy::F64));
    m.native("math_sqrt", &[HTy::F64], Some(HTy::F64));

    // transform(data, direction): in-place radix-2 FFT on interleaved
    // complex data of n points. direction = -1.0 forward, +1.0 inverse.
    let bitrev: Vec<Stmt> = vec![
        let_("j", i(0)),
        for_(
            "i",
            i(0),
            i(n - 1),
            vec![
                if_(
                    lt(var("i"), var("j")),
                    vec![
                        let_("tr", idx(var("data"), mul(var("i"), i(2)))),
                        let_("ti", idx(var("data"), add(mul(var("i"), i(2)), i(1)))),
                        set_idx(
                            var("data"),
                            mul(var("i"), i(2)),
                            idx(var("data"), mul(var("j"), i(2))),
                        ),
                        set_idx(
                            var("data"),
                            add(mul(var("i"), i(2)), i(1)),
                            idx(var("data"), add(mul(var("j"), i(2)), i(1))),
                        ),
                        set_idx(var("data"), mul(var("j"), i(2)), var("tr")),
                        set_idx(var("data"), add(mul(var("j"), i(2)), i(1)), var("ti")),
                    ],
                    vec![],
                ),
                let_("k", i(n / 2)),
                while_(
                    and(ge(var("j"), var("k")), gt(var("k"), i(0))),
                    vec![
                        set("j", sub(var("j"), var("k"))),
                        set("k", div(var("k"), i(2))),
                    ],
                ),
                set("j", add(var("j"), var("k"))),
            ],
        ),
    ];

    let butterflies: Vec<Stmt> = vec![
        let_("dual", i(1)),
        while_(
            lt(var("dual"), i(n)),
            vec![
                for_(
                    "a",
                    i(0),
                    var("dual"),
                    vec![
                        let_(
                            "theta",
                            mul(
                                var("direction"),
                                div(
                                    mul(d(std::f64::consts::PI), i2d(var("a"))),
                                    i2d(var("dual")),
                                ),
                            ),
                        ),
                        let_("w_re", native("math_cos", vec![var("theta")])),
                        let_("w_im", native("math_sin", vec![var("theta")])),
                        let_("b", var("a")),
                        while_(
                            lt(var("b"), i(n)),
                            vec![
                                let_("i1", mul(var("b"), i(2))),
                                let_("j1", mul(add(var("b"), var("dual")), i(2))),
                                let_("z_re", idx(var("data"), var("j1"))),
                                let_("z_im", idx(var("data"), add(var("j1"), i(1)))),
                                let_(
                                    "wd_re",
                                    sub(
                                        mul(var("w_re"), var("z_re")),
                                        mul(var("w_im"), var("z_im")),
                                    ),
                                ),
                                let_(
                                    "wd_im",
                                    add(
                                        mul(var("w_re"), var("z_im")),
                                        mul(var("w_im"), var("z_re")),
                                    ),
                                ),
                                set_idx(
                                    var("data"),
                                    var("j1"),
                                    sub(idx(var("data"), var("i1")), var("wd_re")),
                                ),
                                set_idx(
                                    var("data"),
                                    add(var("j1"), i(1)),
                                    sub(idx(var("data"), add(var("i1"), i(1))), var("wd_im")),
                                ),
                                set_idx(
                                    var("data"),
                                    var("i1"),
                                    add(idx(var("data"), var("i1")), var("wd_re")),
                                ),
                                set_idx(
                                    var("data"),
                                    add(var("i1"), i(1)),
                                    add(idx(var("data"), add(var("i1"), i(1))), var("wd_im")),
                                ),
                                set("b", add(var("b"), mul(var("dual"), i(2)))),
                            ],
                        ),
                    ],
                ),
                set("dual", mul(var("dual"), i(2))),
            ],
        ),
    ];

    let mut transform_body = bitrev;
    transform_body.extend(butterflies);
    m.func(jbc::hll::HFn {
        name: "transform".to_string(),
        params: vec![
            ("data".to_string(), HTy::Arr(ElemTy::F64)),
            ("direction".to_string(), HTy::F64),
        ],
        ret: None,
        body: transform_body,
    });

    m.func(fn_void(
        "main",
        vec![],
        vec![
            let_("data", newarr(ElemTy::F64, i(2 * n))),
            let_("orig", newarr(ElemTy::F64, i(2 * n))),
            let_("seed", l(331)),
            for_(
                "s",
                i(0),
                i(2 * n),
                vec![
                    set("seed", rem(mul(var("seed"), l(16807)), l(2147483647))),
                    let_("v", div(cast(HTy::F64, var("seed")), d(2147483647.0))),
                    set_idx(var("data"), var("s"), var("v")),
                    set_idx(var("orig"), var("s"), var("v")),
                ],
            ),
            expr(call("transform", vec![var("data"), d(-1.0)])),
            expr(call("transform", vec![var("data"), d(1.0)])),
            // Normalize the inverse and compute the RMS error.
            let_("err", d(0.0)),
            for_(
                "s2",
                i(0),
                i(2 * n),
                vec![
                    let_(
                        "dd",
                        sub(
                            div(idx(var("data"), var("s2")), i2d(i(n))),
                            idx(var("orig"), var("s2")),
                        ),
                    ),
                    set("err", add(var("err"), mul(var("dd"), var("dd")))),
                ],
            ),
            expr(native(
                "println_d",
                vec![native("math_sqrt", vec![div(var("err"), i2d(i(2 * n)))])],
            )),
        ],
    ));
    m.compile().expect("FFT compiles")
}

/// Dense LU factorization with partial pivoting of an `n × n` matrix.
pub fn lu_program(n: i32) -> Program {
    let mut m = Module::new("LU");
    println_d_decl(&mut m);
    m.func(fn_void(
        "main",
        vec![],
        vec![
            let_("a", newarr(ElemTy::F64, i(n * n))),
            let_("seed", l(777)),
            for_(
                "s",
                i(0),
                i(n * n),
                vec![
                    set("seed", rem(mul(var("seed"), l(16807)), l(2147483647))),
                    set_idx(
                        var("a"),
                        var("s"),
                        sub(
                            mul(div(cast(HTy::F64, var("seed")), d(2147483647.0)), d(2.0)),
                            d(1.0),
                        ),
                    ),
                ],
            ),
            // Diagonal dominance keeps the factorization well-conditioned.
            for_(
                "dd",
                i(0),
                i(n),
                vec![set_idx(
                    var("a"),
                    add(mul(var("dd"), i(n)), var("dd")),
                    add(
                        idx(var("a"), add(mul(var("dd"), i(n)), var("dd"))),
                        i2d(i(n)),
                    ),
                )],
            ),
            for_(
                "j",
                i(0),
                i(n),
                vec![
                    // Partial pivot search in column j.
                    let_("p", var("j")),
                    let_("maxv", idx(var("a"), add(mul(var("j"), i(n)), var("j")))),
                    if_(
                        lt(var("maxv"), d(0.0)),
                        vec![set("maxv", neg(var("maxv")))],
                        vec![],
                    ),
                    for_(
                        "r",
                        add(var("j"), i(1)),
                        i(n),
                        vec![
                            let_("cand", idx(var("a"), add(mul(var("r"), i(n)), var("j")))),
                            if_(
                                lt(var("cand"), d(0.0)),
                                vec![set("cand", neg(var("cand")))],
                                vec![],
                            ),
                            if_(
                                gt(var("cand"), var("maxv")),
                                vec![set("maxv", var("cand")), set("p", var("r"))],
                                vec![],
                            ),
                        ],
                    ),
                    // Row swap if needed.
                    if_(
                        ne(var("p"), var("j")),
                        vec![for_(
                            "c",
                            i(0),
                            i(n),
                            vec![
                                let_("tmp", idx(var("a"), add(mul(var("p"), i(n)), var("c")))),
                                set_idx(
                                    var("a"),
                                    add(mul(var("p"), i(n)), var("c")),
                                    idx(var("a"), add(mul(var("j"), i(n)), var("c"))),
                                ),
                                set_idx(var("a"), add(mul(var("j"), i(n)), var("c")), var("tmp")),
                            ],
                        )],
                        vec![],
                    ),
                    // Elimination below the pivot.
                    let_("piv", idx(var("a"), add(mul(var("j"), i(n)), var("j")))),
                    for_(
                        "r2",
                        add(var("j"), i(1)),
                        i(n),
                        vec![
                            let_(
                                "f",
                                div(
                                    idx(var("a"), add(mul(var("r2"), i(n)), var("j"))),
                                    var("piv"),
                                ),
                            ),
                            set_idx(var("a"), add(mul(var("r2"), i(n)), var("j")), var("f")),
                            for_(
                                "c2",
                                add(var("j"), i(1)),
                                i(n),
                                vec![set_idx(
                                    var("a"),
                                    add(mul(var("r2"), i(n)), var("c2")),
                                    sub(
                                        idx(var("a"), add(mul(var("r2"), i(n)), var("c2"))),
                                        mul(
                                            var("f"),
                                            idx(var("a"), add(mul(var("j"), i(n)), var("c2"))),
                                        ),
                                    ),
                                )],
                            ),
                        ],
                    ),
                ],
            ),
            // Checksum: Σ diag.
            let_("total", d(0.0)),
            for_(
                "d2",
                i(0),
                i(n),
                vec![set(
                    "total",
                    add(
                        var("total"),
                        idx(var("a"), add(mul(var("d2"), i(n)), var("d2"))),
                    ),
                )],
            ),
            expr(native("println_d", vec![var("total")])),
        ],
    ));
    m.compile().expect("LU compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbc::verify;

    #[test]
    fn all_kernels_compile_and_verify() {
        for k in Kernel::all() {
            let p = k.program_small();
            verify(&p).unwrap_or_else(|e| panic!("{}: {e}", k.label()));
            assert!(p.total_code_len() > 50, "{} is non-trivial", k.label());
        }
    }

    #[test]
    fn full_sizes_compile_too() {
        for k in Kernel::all() {
            verify(&k.program_full()).unwrap_or_else(|e| panic!("{}: {e}", k.label()));
        }
    }

    #[test]
    fn labels_match_paper_order() {
        let labels: Vec<&str> = Kernel::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["SOR", "SMM", "MC", "FFT", "LU"]);
    }
}
