//! `workloads` — the guest programs of the paper's evaluation, in bytecode.
//!
//! Everything the paper runs inside its JVM is reproduced here as a `jbc`
//! program authored through the HLL front-end:
//!
//! * [`scimark`] — NIST SciMark 2.0's five kernels (FFT, SOR, Monte Carlo,
//!   sparse mat-mult, LU), used by Table 2 and Fig. 6;
//! * [`microbench`] — the zero-a-large-array microbenchmark of Fig. 2;
//! * [`nfs`] — an NFS-style file server (the `nfsj` stand-in) plus the
//!   client-side request codec, used by Fig. 7, §6.5, and the
//!   covert-channel experiments (Fig. 8);
//! * [`bootserve`] — a boot-then-serve VM image whose phases (clock
//!   calibration, idle waits, request handling) give functional replay its
//!   characteristic divergence (Fig. 3).
//!
//! Program sizes are parameterized; the `default_small` constructors pick
//! sizes that keep whole experiment sweeps tractable, and the harness's
//! `--full` mode scales them up.

pub mod artifacts;
pub mod bootserve;
pub mod corpus;
pub mod microbench;
pub mod nfs;
pub mod scimark;
