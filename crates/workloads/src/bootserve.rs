//! The boot-then-serve VM image for the Fig. 3 experiment.
//!
//! The paper records a Linux VM booting and serving HTTP requests under
//! XenTT, then compares the wall-clock progress of play vs. replay and finds
//! gross divergence: replay rushes through phases where play waited for
//! input, and crawls through the boot phase where the kernel calibrates its
//! clock (every calibration read is an injected event). This workload has
//! the same two phases:
//!
//! 1. **Boot**: a clock-calibration loop — repeated `nano_time` reads with
//!    compute in between (every read is a logged/injected event), plus a
//!    checksum pass over a buffer ("decompressing the kernel");
//! 2. **Serve**: `n_requests` request-response rounds with `wait_packet`
//!    idle time in between (skipped entirely by functional replay).

use jbc::hll::{dsl::*, HTy, Module};
use jbc::{ElemTy, Program};

/// Build the boot+serve image.
///
/// `calib_rounds` controls how many clock reads the boot phase performs and
/// `n_requests` how many requests the serve phase handles.
pub fn bootserve_program(calib_rounds: i32, n_requests: i32) -> Program {
    let mut m = Module::new("BootServe");
    m.native("nano_time", &[], Some(HTy::I64));
    m.native("wait_packet", &[], None);
    m.native("net_recv", &[HTy::Arr(ElemTy::I8)], Some(HTy::I32));
    m.native("net_send", &[HTy::Arr(ElemTy::I8), HTy::I32], None);

    m.func(fn_void(
        "main",
        vec![],
        vec![
            // ---- Boot phase -------------------------------------------
            // "Decompress the kernel": checksum over a working buffer.
            let_("img", newarr(ElemTy::I32, i(8192))),
            for_(
                "b",
                i(0),
                i(8192),
                vec![set_idx(
                    var("img"),
                    var("b"),
                    mul(var("b"), i(2654435761u32 as i32)),
                )],
            ),
            let_("crc", i(0)),
            for_(
                "b2",
                i(0),
                i(8192),
                vec![set(
                    "crc",
                    bxor(shl(var("crc"), i(1)), idx(var("img"), var("b2"))),
                )],
            ),
            // Clock calibration: repeated timestamp reads with fixed spins
            // in between, accumulating an estimated rate. Every nano_time
            // is an event the replayer must inject.
            let_("rate", l(0)),
            for_(
                "cal",
                i(0),
                i(calib_rounds),
                vec![
                    let_("t0", native("nano_time", vec![])),
                    let_("burn", i(0)),
                    for_(
                        "sp",
                        i(0),
                        i(400),
                        vec![set("burn", add(var("burn"), i(1)))],
                    ),
                    let_("t1", native("nano_time", vec![])),
                    set("rate", add(var("rate"), sub(var("t1"), var("t0")))),
                ],
            ),
            // ---- Serve phase -------------------------------------------
            let_("req", newarr(ElemTy::I8, i(128))),
            let_("resp", newarr(ElemTy::I8, i(256))),
            let_("served", i(0)),
            while_(
                lt(var("served"), i(n_requests)),
                vec![
                    expr(native("wait_packet", vec![])),
                    let_("n", native("net_recv", vec![var("req")])),
                    if_(lt(var("n"), i(1)), vec![cont()], vec![]),
                    // "Render a page": compute over the request bytes.
                    let_("h", i(5381)),
                    for_(
                        "c",
                        i(0),
                        var("n"),
                        vec![set(
                            "h",
                            add(
                                mul(var("h"), i(33)),
                                band(idx(var("req"), var("c")), i(0xff)),
                            ),
                        )],
                    ),
                    set_idx(var("resp"), i(0), band(var("h"), i(0xff))),
                    set_idx(var("resp"), i(1), band(shr(var("h"), i(8)), i(0xff))),
                    expr(native("net_send", vec![var("resp"), i(64)])),
                    set("served", add(var("served"), i(1))),
                ],
            ),
        ],
    ));
    m.compile().expect("bootserve compiles")
}

/// Sweep-friendly default: 60 calibration rounds, 20 requests.
pub fn default_small() -> Program {
    bootserve_program(60, 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbc::verify;

    #[test]
    fn compiles_and_verifies() {
        let p = default_small();
        verify(&p).expect("verifies");
        assert!(p.total_code_len() > 100);
    }

    #[test]
    fn parameterization_changes_constants_not_structure() {
        let a = bootserve_program(10, 5);
        let b = bootserve_program(99, 50);
        assert_eq!(a.total_code_len(), b.total_code_len());
    }
}
