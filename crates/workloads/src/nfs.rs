//! The NFS-style file server (the paper's `nfsj` stand-in) and its client.
//!
//! The server handles GETATTR / READ / LOOKUP requests arriving as datagram
//! packets, reads file content through the storage natives, timestamps each
//! response via `nano_time` (so the log contains both packet and value
//! events, as in §6.5), and calls the `covert_delay` primitive before every
//! send — the "special JVM primitive that we can enable or disable at
//! runtime" (§6.6). With no delay model installed the primitive is inert,
//! which makes the very same binary serve as the known-good reference for
//! audit replay.
//!
//! The client side ([`client_schedule`], [`make_files`]) produces the
//! workload of §6.6: a set of files read back to back, with legitimate
//! inter-request gaps drawn from a seeded bursty distribution.

use jbc::hll::{dsl::*, HTy, Module};
use jbc::{ElemTy, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Request opcode: attributes.
pub const OP_GETATTR: u8 = 1;
/// Request opcode: read a byte range.
pub const OP_READ: u8 = 2;
/// Request opcode: name lookup.
pub const OP_LOOKUP: u8 = 3;

/// Fixed request packet size (RPC-header-ish padding).
pub const REQUEST_SIZE: usize = 64;
/// Response header size.
pub const RESPONSE_HEADER: usize = 8;
/// Maximum READ payload per request.
pub const MAX_READ: usize = 1024;

/// Encode a request packet.
pub fn encode_request(op: u8, fid: u8, offset: u16, len: u16) -> Vec<u8> {
    let mut p = vec![0u8; REQUEST_SIZE];
    p[0] = op;
    p[1] = fid;
    p[2] = (offset & 0xff) as u8;
    p[3] = (offset >> 8) as u8;
    p[4] = (len & 0xff) as u8;
    p[5] = (len >> 8) as u8;
    p
}

/// Decode a response header: `(op, fid, payload_len)`.
pub fn decode_response(pkt: &[u8]) -> Option<(u8, u8, usize)> {
    if pkt.len() < RESPONSE_HEADER {
        return None;
    }
    let len = pkt[4] as usize | ((pkt[5] as usize) << 8);
    Some((pkt[0], pkt[1], len))
}

/// Build the server program that serves exactly `n_requests` requests.
pub fn server_program(n_requests: i32) -> Program {
    let mut m = Module::new("NfsServer");
    m.native("wait_packet", &[], None);
    m.native("net_recv", &[HTy::Arr(ElemTy::I8)], Some(HTy::I32));
    m.native("net_send", &[HTy::Arr(ElemTy::I8), HTy::I32], None);
    m.native("nano_time", &[], Some(HTy::I64));
    m.native("covert_delay", &[], None);
    m.native(
        "file_read",
        &[HTy::I32, HTy::I32, HTy::Arr(ElemTy::I8)],
        Some(HTy::I32),
    );
    m.native("file_size", &[HTy::I32], Some(HTy::I32));

    m.func(fn_void(
        "main",
        vec![],
        vec![
            let_("req", newarr(ElemTy::I8, i(REQUEST_SIZE as i32))),
            let_("data", newarr(ElemTy::I8, i(MAX_READ as i32))),
            let_(
                "out",
                newarr(ElemTy::I8, i((RESPONSE_HEADER + MAX_READ) as i32)),
            ),
            let_("served", i(0)),
            while_(
                lt(var("served"), i(n_requests)),
                vec![
                    expr(native("wait_packet", vec![])),
                    let_("n", native("net_recv", vec![var("req")])),
                    if_(lt(var("n"), i(6)), vec![cont()], vec![]),
                    let_("op", band(idx(var("req"), i(0)), i(0xff))),
                    let_("fid", band(idx(var("req"), i(1)), i(0xff))),
                    let_(
                        "off",
                        bor(
                            band(idx(var("req"), i(2)), i(0xff)),
                            shl(band(idx(var("req"), i(3)), i(0xff)), i(8)),
                        ),
                    ),
                    let_(
                        "rlen",
                        bor(
                            band(idx(var("req"), i(4)), i(0xff)),
                            shl(band(idx(var("req"), i(5)), i(0xff)), i(8)),
                        ),
                    ),
                    if_(
                        gt(var("rlen"), i(MAX_READ as i32)),
                        vec![set("rlen", i(MAX_READ as i32))],
                        vec![],
                    ),
                    // Response timestamp ("mtime") — a logged event value.
                    let_("stamp", native("nano_time", vec![])),
                    let_("paylen", i(0)),
                    if_(
                        eq(var("op"), i(OP_READ as i32)),
                        vec![
                            let_(
                                "got",
                                native("file_read", vec![var("fid"), var("off"), var("data")]),
                            ),
                            set("paylen", var("got")),
                            if_(
                                gt(var("paylen"), var("rlen")),
                                vec![set("paylen", var("rlen"))],
                                vec![],
                            ),
                            if_(lt(var("paylen"), i(0)), vec![set("paylen", i(0))], vec![]),
                            for_(
                                "c",
                                i(0),
                                var("paylen"),
                                vec![set_idx(
                                    var("out"),
                                    add(var("c"), i(RESPONSE_HEADER as i32)),
                                    idx(var("data"), var("c")),
                                )],
                            ),
                        ],
                        vec![if_(
                            eq(var("op"), i(OP_GETATTR as i32)),
                            vec![
                                // Attributes: file size in the payload.
                                let_("sz", native("file_size", vec![var("fid")])),
                                set_idx(var("out"), i(8), band(var("sz"), i(0xff))),
                                set_idx(var("out"), i(9), band(shr(var("sz"), i(8)), i(0xff))),
                                set("paylen", i(4)),
                            ],
                            vec![
                                // LOOKUP: echo a small handle.
                                set_idx(var("out"), i(8), var("fid")),
                                set("paylen", i(4)),
                            ],
                        )],
                    ),
                    // Header: [op, fid, status, stamp-lsb, len lo, len hi].
                    set_idx(var("out"), i(0), var("op")),
                    set_idx(var("out"), i(1), var("fid")),
                    set_idx(var("out"), i(2), i(0)),
                    set_idx(
                        var("out"),
                        i(3),
                        band(cast(HTy::I32, var("stamp")), i(0x7f)),
                    ),
                    set_idx(var("out"), i(4), band(var("paylen"), i(0xff))),
                    set_idx(var("out"), i(5), band(shr(var("paylen"), i(8)), i(0xff))),
                    // The covert primitive (inert unless a model is armed).
                    expr(native("covert_delay", vec![])),
                    expr(native(
                        "net_send",
                        vec![var("out"), add(var("paylen"), i(RESPONSE_HEADER as i32))],
                    )),
                    set("served", add(var("served"), i(1))),
                ],
            ),
        ],
    ));
    m.compile().expect("NFS server compiles")
}

/// Deterministically generate `n` files with sizes in `[min_b, max_b]`.
pub fn make_files(n: usize, min_b: usize, max_b: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|fid| {
            let size = rng.gen_range(min_b..=max_b);
            (0..size)
                .map(|k| ((k as u64 * 31 + fid as u64) & 0xff) as u8)
                .collect()
        })
        .collect()
}

/// A timed client request schedule (the legitimate traffic source).
#[derive(Debug, Clone)]
pub struct RequestSchedule {
    /// `(arrival_cycle, packet)` pairs, ascending.
    pub packets: Vec<(u64, Vec<u8>)>,
}

impl RequestSchedule {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The inter-arrival gaps (legitimate IPD reference sample), cycles.
    pub fn gaps(&self) -> Vec<u64> {
        self.packets.windows(2).map(|w| w[1].0 - w[0].0).collect()
    }
}

/// The §6.6 client: read every file front to back in [`MAX_READ`] chunks,
/// one request per chunk, with bursty legitimate gaps around `mean_gap`
/// cycles (lognormal-ish with slowly wandering burst scale).
pub fn client_schedule(
    files: &[Vec<u8>],
    start_cycle: u64,
    mean_gap: u64,
    seed: u64,
) -> RequestSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = start_cycle;
    let mut packets = Vec::new();
    let mut scale = 1.0f64;
    let mut width = 0.12f64;
    let mut n = 0usize;
    for (fid, f) in files.iter().enumerate() {
        let mut off = 0usize;
        loop {
            let chunk = (f.len() - off).min(MAX_READ);
            packets.push((
                t,
                encode_request(OP_READ, fid as u8, off as u16, chunk as u16),
            ));
            n += 1;
            // Legitimate traffic is bursty: both the burst scale and the
            // in-burst variability wander over time. The scale keeps IPDs
            // in the paper's 6-9 ms band (Fig. 7); the wandering width is
            // what the regularity test keys on — real traffic's variance
            // "varies over time" (§5.2).
            if n.is_multiple_of(16) {
                scale = rng.gen_range(0.85..1.30);
                width = rng.gen_range(0.05..0.25);
            }
            let u1: f64 = rng.gen_range(1e-9..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let gap = (mean_gap as f64 * scale * (width * z).exp()).max(1000.0) as u64;
            t += gap;
            off += chunk;
            if off >= f.len() {
                break;
            }
        }
    }
    RequestSchedule { packets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbc::verify;

    #[test]
    fn server_compiles_and_verifies() {
        let p = server_program(10);
        verify(&p).expect("verifies");
        assert!(p.total_code_len() > 80);
    }

    #[test]
    fn request_codec_roundtrip() {
        let p = encode_request(OP_READ, 7, 2048, 1024);
        assert_eq!(p.len(), REQUEST_SIZE);
        assert_eq!(p[0], OP_READ);
        assert_eq!(p[1], 7);
        assert_eq!(p[2] as u16 | ((p[3] as u16) << 8), 2048);
        assert_eq!(p[4] as u16 | ((p[5] as u16) << 8), 1024);
    }

    #[test]
    fn response_decode() {
        let mut r = vec![0u8; 12];
        r[0] = OP_READ;
        r[1] = 3;
        r[4] = 0x00;
        r[5] = 0x01; // len = 256
        assert_eq!(decode_response(&r), Some((OP_READ, 3, 256)));
        assert_eq!(decode_response(&r[..4]), None);
    }

    #[test]
    fn files_are_deterministic() {
        let a = make_files(5, 100, 1000, 42);
        let b = make_files(5, 100, 1000, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        for f in &a {
            assert!((100..=1000).contains(&f.len()));
        }
    }

    #[test]
    fn schedule_covers_all_files_in_chunks() {
        let files = make_files(3, 2000, 3000, 1);
        let sched = client_schedule(&files, 1000, 700_000, 2);
        let expected: usize = files.iter().map(|f| f.len().div_ceil(MAX_READ)).sum();
        assert_eq!(sched.len(), expected);
        // Ascending times.
        for w in sched.packets.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        // Gaps hover around the mean.
        let gaps = sched.gaps();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(mean > 500_000.0 && mean < 1_200_000.0, "mean={mean}");
    }

    #[test]
    fn schedule_is_seed_deterministic() {
        let files = make_files(2, 1500, 1500, 3);
        let a = client_schedule(&files, 0, 500_000, 9);
        let b = client_schedule(&files, 0, 500_000, 9);
        assert_eq!(a.packets, b.packets);
    }
}
