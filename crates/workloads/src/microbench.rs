//! Microbenchmarks: the zero-a-large-array experiment of Fig. 2.
//!
//! The paper measures "the time it took to zero out a 4 MB array" across
//! four environments. At the simulated 100 MHz clock a 4 MB byte-wise fill
//! is ~10⁷ instructions; the small default (256 KiB) keeps 200-run sweeps
//! fast while exercising the same cache-capacity effects (the array exceeds
//! L2 in both cases).

use jbc::hll::{dsl::*, Module};
use jbc::{ElemTy, Program};

/// Zero an `i64[]` of `bytes` total size, `reps` times.
///
/// Writing longs (8 bytes per store) keeps the instruction count tractable
/// while touching every cache line, like `memset` does.
pub fn zero_array_program(bytes: i32, reps: i32) -> Program {
    let elems = bytes / 8;
    let mut m = Module::new("ZeroArray");
    m.func(fn_void(
        "main",
        vec![],
        vec![
            let_("a", newarr(ElemTy::I64, i(elems))),
            for_(
                "r",
                i(0),
                i(reps),
                vec![for_(
                    "k",
                    i(0),
                    i(elems),
                    vec![set_idx(var("a"), var("k"), l(0))],
                )],
            ),
        ],
    ));
    m.compile().expect("zero_array compiles")
}

/// The sweep-friendly default: 256 KiB, one pass.
pub fn default_small() -> Program {
    zero_array_program(256 * 1024, 1)
}

/// The paper's size: 4 MB, one pass.
pub fn default_full() -> Program {
    zero_array_program(4 * 1024 * 1024, 1)
}

/// A pure-compute spin loop of `iters` iterations (scheduler/noise tests).
pub fn spin_program(iters: i32) -> Program {
    let mut m = Module::new("Spin");
    m.func(fn_void(
        "main",
        vec![],
        vec![
            let_("acc", i(0)),
            for_(
                "k",
                i(0),
                i(iters),
                vec![set("acc", add(var("acc"), rem(var("k"), i(7))))],
            ),
        ],
    ));
    m.compile().expect("spin compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbc::verify;

    #[test]
    fn programs_compile_and_verify() {
        verify(&default_small()).expect("small");
        verify(&default_full()).expect("full");
        verify(&spin_program(1000)).expect("spin");
    }

    #[test]
    fn zero_array_scales_with_size() {
        let small = zero_array_program(1024, 1);
        let big = zero_array_program(4096, 1);
        // Same code, different constants.
        assert_eq!(small.total_code_len(), big.total_code_len());
    }
}
