//! The evaluation workloads as loadable reference artifacts.
//!
//! The reference-program registry (`docs/FORMATS.md` §7) ships programs
//! over the wire as sealed TDRP containers; this module names the corpus
//! programs a fleet deployment registers — the same programs the rest of
//! this crate compiles in — so `tdrd --export-references` and the bench
//! suite agree on one artifact set.
//!
//! Registry references travel *program-only* (no stable-storage file set,
//! no trained battery), so the set is restricted to programs whose
//! recorded sessions do not touch files: the SciMark kernels compute
//! pure-functionally, the NFS server's `OP_LOOKUP` path never calls
//! `file_read`/`file_size`, and corpus programs only transmit.

use jbc::Program;

use crate::corpus::{corpus_program, GOLDEN_CORPUS_SEED};
use crate::nfs::server_program;
use crate::scimark::fft_program;

/// Requests the exported NFS reference serves per session (LOOKUP-only
/// sessions — see the module docs).
pub const NFS_ARTIFACT_REQUESTS: i32 = 4;

/// FFT size of the exported SciMark reference: large enough to be real
/// compute, small enough that recording a session stays inside the VM's
/// instruction budget (256-point sessions exceed it).
pub const FFT_ARTIFACT_POINTS: i32 = 64;

/// The named reference programs a deployment registers: SciMark FFT, the
/// NFS server, and the first golden-corpus member. Deterministic — the
/// same names always seal to the same TDRP bytes (and therefore the same
/// reference ids).
pub fn registry_artifacts() -> Vec<(&'static str, Program)> {
    vec![
        ("scimark_fft", fft_program(FFT_ARTIFACT_POINTS)),
        ("nfs_server", server_program(NFS_ARTIFACT_REQUESTS)),
        ("corpus_0", corpus_program(GOLDEN_CORPUS_SEED)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_verify_and_have_stable_distinct_ids() {
        let a = registry_artifacts();
        let b = registry_artifacts();
        assert_eq!(a.len(), b.len());
        let mut ids = Vec::new();
        for ((name_a, prog_a), (name_b, prog_b)) in a.iter().zip(&b) {
            assert_eq!(name_a, name_b);
            jbc::verify(prog_a).expect("artifact verifies");
            let id_a = jbc::container::reference_id(prog_a);
            assert_eq!(
                id_a,
                jbc::container::reference_id(prog_b),
                "{name_a} id is stable"
            );
            ids.push(id_a);
        }
        ids.sort_by_key(|id| id.0);
        ids.dedup();
        assert_eq!(ids.len(), a.len(), "artifact ids are distinct");
    }
}
