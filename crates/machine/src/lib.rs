//! `machine` — the simulated platform Sanity runs on.
//!
//! This crate assembles the timing substrate (`sim-core`) into a platform
//! with the structure the paper's prototype has (§3.3–§3.7, §4.2):
//!
//! * a **timed core (TC)** executing the VM, modeled by
//!   [`sim_core::CoreModel`];
//! * a **supporting core (SC)** that handles devices and I/O; the SC is not
//!   instruction-simulated — its externally visible effects (DMA bus
//!   traffic, per-event processing latency, log storage writes) are;
//! * the **S-T and T-S ring buffers** ([`ringbuf`]) through which the cores
//!   communicate, including the paper's two signature mechanisms: the
//!   branch-free symmetric read/write ([`ringbuf::SymCell`], Fig. 4) and the
//!   fake-infinity timestamp protocol ([`ringbuf::StBuffer`], §3.5);
//! * **devices** ([`device`]): a NIC and a storage device (SSD or HDD) with
//!   optional worst-case padding (§3.7);
//! * an **address space** with pluggable frame assignment ([`addr`]) — the
//!   same physical frames across runs, or a per-run random assignment
//!   (§3.6);
//! * **host-environment noise** ([`noise`]): preemptions, timer interrupts,
//!   background DMA, dirty initial caches, frequency scaling — the four
//!   environments of Fig. 2 plus the Sanity configuration.
//!
//! The [`machine::Machine`] type ties these together and is what the VM
//! executes against.

pub mod addr;
pub mod device;
pub mod machine;
pub mod noise;
pub mod ringbuf;
pub mod sched;

pub use addr::{AddressSpace, FramePolicy, PAGE_SIZE};
pub use device::{Nic, Storage, StorageKind, TxRecord};
pub use machine::{EventMark, Machine, MachineConfig, MarkKind, Seeds};
pub use noise::{Environment, NoiseConfig, NoiseInjector};
pub use ringbuf::{NaiveCell, Phase, StBuffer, StEntry, SymCell, TsBuffer, TS_INFINITY};
pub use sched::{ComponentId, TickQueue};
