//! The S-T and T-S ring buffers and the symmetric-access mechanisms.
//!
//! These implement the two devices at the heart of the paper's
//! play/replay-symmetry design (§3.4–§3.5):
//!
//! * [`SymCell::sym_access`] — the branch-free merge of Fig. 4. The TC
//!   performs *exactly* the same loads, stores, and (absence of) branches in
//!   play and replay; only the `play_mask` differs, and the mask is data,
//!   not control flow.
//! * [`NaiveCell::naive_access`] — the strawman the paper warns about: check
//!   a replay flag and branch. Its memory traffic and branch direction
//!   differ between the phases, which dirties the cache differently and
//!   trains the BTB differently. Kept for the ablation experiment.
//! * [`StBuffer`] — the SC→TC buffer with the fake-infinity timestamp
//!   protocol: the buffer always ends in a sentinel whose timestamp is
//!   "infinity", appends overwrite the sentinel with timestamp 0, and the TC
//!   always performs the same read-check-write sequence on the head entry
//!   whether or not data is present.
//! * [`TsBuffer`] — the TC→SC buffer carrying outputs and logged values.
//!
//! Functionally the buffers are ordinary queues; *timing-wise* every TC
//! operation charges its loads/stores through the [`CoreModel`] at the
//! buffer's simulated addresses, so cache and bus effects are faithful.

use std::collections::VecDeque;

use sim_core::{CoreModel, Cycles};

use crate::addr::AddressSpace;

/// The "infinity" timestamp carried by the sentinel entry (§3.5).
pub const TS_INFINITY: u64 = u64::MAX;

/// Execution phase; determines the value of the play mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Original execution: values are produced and recorded.
    Play,
    /// Reproduced execution: values are injected from the log.
    Replay,
}

impl Phase {
    /// The Fig. 4 bit mask: all-ones during play, zero during replay.
    pub fn mask(self) -> u64 {
        match self {
            Phase::Play => u64::MAX,
            Phase::Replay => 0,
        }
    }
}

/// A single value cell accessed with the symmetric algorithm of Fig. 4.
///
/// One cell per event slot in the T-S ring; the owning [`TsBuffer`] supplies
/// the addresses so consecutive events touch consecutive slots.
#[derive(Debug, Clone)]
pub struct SymCell {
    /// Simulated virtual address of the cell.
    pub vaddr: u64,
    /// Stored value (the `*buf` of Fig. 4).
    pub buf: u64,
}

impl SymCell {
    /// Perform the symmetric access: identical memory traffic in both
    /// phases. Returns the merged value (the produced `value` during play,
    /// the buffered value during replay).
    pub fn sym_access(
        &mut self,
        value: u64,
        mask: u64,
        core: &mut CoreModel,
        aspace: &AddressSpace,
    ) -> u64 {
        // temp = (*value & mask) | (*buf & !mask)  — no branches.
        let paddr = aspace.translate(self.vaddr);
        core.mem_access(self.vaddr, paddr, false); // Load *buf.
        let merged = (value & mask) | (self.buf & !mask);
        core.mem_access(self.vaddr, paddr, true); // Store *buf.
        self.buf = merged;
        merged
    }
}

/// The naive, *asymmetric* strawman: branch on a replay flag, then either
/// write (play) or read (replay). Used only by the ablation experiments.
#[derive(Debug, Clone)]
pub struct NaiveCell {
    /// Simulated virtual address of the cell.
    pub vaddr: u64,
    /// Simulated fetch address of the flag-checking branch.
    pub branch_pc: u64,
    /// Stored value.
    pub buf: u64,
}

impl NaiveCell {
    /// Perform the asymmetric access. During play the cell is written
    /// (dirty line, branch taken); during replay it is read (clean line,
    /// branch not taken).
    pub fn naive_access(
        &mut self,
        value: u64,
        phase: Phase,
        core: &mut CoreModel,
        aspace: &AddressSpace,
    ) -> u64 {
        let paddr = aspace.translate(self.vaddr);
        // The flag check: a conditional branch whose direction depends on
        // the phase — this is precisely what pollutes the BTB.
        let branch_paddr = aspace.translate(self.branch_pc);
        core.branch_only(branch_paddr, phase == Phase::Play, branch_paddr + 64);
        match phase {
            Phase::Play => {
                core.mem_access(self.vaddr, paddr, true);
                self.buf = value;
                value
            }
            Phase::Replay => {
                core.mem_access(self.vaddr, paddr, false);
                self.buf
            }
        }
    }
}

/// One entry of the S-T (supporting-core → timed-core) buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StEntry {
    /// Virtual timestamp: instruction count at which the TC first observed
    /// the entry (written by the TC; 0 when freshly appended by the SC;
    /// [`TS_INFINITY`] for the sentinel).
    pub ts: u64,
    /// Payload bytes (e.g., a network packet).
    pub data: Vec<u8>,
    /// Cycle at which the SC finished writing the entry (play only): the TC
    /// cannot observe the entry before this.
    pub avail_at: Cycles,
    /// Cycle at which the packet arrived on the wire (before DMA + SC
    /// processing). Recorded in the log so an *audit* replay can re-deliver
    /// inputs at their original arrival times to a different binary (§5.3).
    pub wire_at: Cycles,
}

/// The S-T ring buffer with the fake-infinity sentinel protocol (§3.5).
#[derive(Debug)]
pub struct StBuffer {
    base_vaddr: u64,
    /// Entry stride in simulated bytes (one page per entry keeps the
    /// addressing simple and realistic enough).
    stride: u64,
    capacity: usize,
    /// Pending entries, oldest first. The conceptual sentinel at the end is
    /// implicit: `entries.len()`'s slot holds timestamp ∞.
    entries: VecDeque<StEntry>,
    /// Ring cursor of the *head* slot (advances as the TC consumes).
    head_slot: u64,
    phase: Phase,
    /// Count of TC polls (each is a symmetric read-check-write).
    polls: u64,
    /// Count of entries consumed by the TC.
    consumed: u64,
    /// Entries consumed during play, with their final timestamps — the raw
    /// material of the event log.
    consumed_log: Vec<StEntry>,
}

impl StBuffer {
    /// Create an empty buffer whose slots live at `base_vaddr`.
    pub fn new(base_vaddr: u64, capacity: usize) -> Self {
        StBuffer {
            base_vaddr,
            stride: 4096,
            capacity,
            entries: VecDeque::new(),
            head_slot: 0,
            phase: Phase::Play,
            polls: 0,
            consumed: 0,
            consumed_log: Vec::new(),
        }
    }

    /// Switch to replay and preload the logged entries (their `ts` values
    /// are the recorded instruction counts).
    pub fn enter_replay(&mut self, logged: Vec<StEntry>) {
        self.phase = Phase::Replay;
        self.entries = logged.into();
        self.head_slot = 0;
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// SC side: append an entry (play). Overwrites the sentinel with a
    /// timestamp of zero and pushes a new sentinel, per §3.5. Returns false
    /// if the ring is full (the packet would be dropped, as real NIC rings
    /// drop on overrun).
    pub fn sc_append(&mut self, data: Vec<u8>, avail_at: Cycles, wire_at: Cycles) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push_back(StEntry {
            ts: 0,
            data,
            avail_at,
            wire_at,
        });
        true
    }

    /// Take the entries consumed during play (the log material).
    pub fn take_consumed_log(&mut self) -> Vec<StEntry> {
        std::mem::take(&mut self.consumed_log)
    }

    /// Number of entries currently pending.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Cycle at which the head entry becomes (became) observable, if any.
    /// During replay this is the recorded arrival cycle from the log.
    pub fn front_avail(&self) -> Option<Cycles> {
        self.entries.front().map(|e| e.avail_at)
    }

    /// Virtual timestamp of the head entry, if any (replay injection point).
    pub fn front_ts(&self) -> Option<u64> {
        self.entries.front().map(|e| e.ts)
    }

    /// `(polls, consumed)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.polls, self.consumed)
    }

    fn head_addr(&self) -> u64 {
        self.base_vaddr + (self.head_slot % self.capacity as u64) * self.stride
    }

    /// TC side: poll the head entry at instruction count `icount`, cycle
    /// `now`. The timing-relevant sequence is identical whether or not an
    /// entry is ready: load the timestamp, check it, store it back.
    ///
    /// Play: a fresh entry has `ts == 0`; the TC replaces it with `icount`
    /// (the virtual timestamp that will be logged) and consumes the payload.
    /// Replay: an entry is consumable once `icount >= ts`.
    ///
    /// Returns the payload and its virtual timestamp if consumed.
    pub fn tc_poll(
        &mut self,
        icount: u64,
        now: Cycles,
        core: &mut CoreModel,
        aspace: &AddressSpace,
    ) -> Option<(Vec<u8>, u64)> {
        self.polls += 1;
        let head_vaddr = self.head_addr();
        let head_paddr = aspace.translate(head_vaddr);
        // Symmetric sequence: read ts, (check), write ts — always.
        core.mem_access(head_vaddr, head_paddr, false);
        core.mem_access(head_vaddr, head_paddr, true);

        let ready = match self.entries.front() {
            None => false, // Sentinel: ts = ∞, check fails.
            Some(e) => match self.phase {
                Phase::Play => e.avail_at <= now && e.ts == 0,
                Phase::Replay => icount >= e.ts,
            },
        };
        if !ready {
            return None;
        }
        let mut e = self.entries.pop_front().expect("checked front");
        let ts = match self.phase {
            Phase::Play => {
                // TC recognizes the zero timestamp and replaces it with the
                // current instruction count (§3.5).
                e.ts = icount;
                self.consumed_log.push(e.clone());
                icount
            }
            Phase::Replay => e.ts,
        };
        // Payload copy: one load per 64-byte line.
        let lines = (e.data.len() as u64).div_ceil(64).max(1);
        for k in 0..lines {
            let va = head_vaddr + 64 + k * 64;
            core.mem_access(va, aspace.translate(va), false);
        }
        self.head_slot += 1;
        self.consumed += 1;
        Some((e.data, ts))
    }
}

/// The T-S (timed-core → supporting-core) ring buffer.
///
/// Carries two kinds of traffic: *logged event values* (e.g.
/// `System.nanoTime` results), which use [`SymCell`]-style symmetric access,
/// and *output packets*, which are pure writes in both phases (the replayed
/// execution produces an identical copy, §6.5).
#[derive(Debug)]
pub struct TsBuffer {
    base_vaddr: u64,
    capacity: usize,
    slot: u64,
    mask: u64,
    /// Values the SC prefilled for replay (from the log), oldest first.
    replay_values: VecDeque<u64>,
    /// Values the SC drained during play (destined for the log).
    drained: Vec<u64>,
    /// Packets the TC wrote (SC forwards during play, discards in replay).
    packets: Vec<Vec<u8>>,
    events: u64,
}

impl TsBuffer {
    /// Create an empty buffer whose slots live at `base_vaddr`.
    pub fn new(base_vaddr: u64, capacity: usize) -> Self {
        TsBuffer {
            base_vaddr,
            capacity,
            slot: 0,
            mask: Phase::Play.mask(),
            replay_values: VecDeque::new(),
            drained: Vec::new(),
            packets: Vec::new(),
            events: 0,
        }
    }

    /// Switch to replay, preloading logged event values.
    pub fn enter_replay(&mut self, values: Vec<u64>) {
        self.mask = Phase::Replay.mask();
        self.replay_values = values.into();
    }

    /// Record an event value with symmetric access. During play the produced
    /// `value` is stored (and later drained into the log); during replay the
    /// prefilled logged value is returned instead.
    pub fn event_value(&mut self, value: u64, core: &mut CoreModel, aspace: &AddressSpace) -> u64 {
        let vaddr = self.base_vaddr + (self.slot % self.capacity as u64) * 8;
        self.slot += 1;
        self.events += 1;
        // SC prefill (replay): the logged value is already in the slot. The
        // SC's own write happened off the TC's critical path.
        let prefill = if self.mask == 0 {
            self.replay_values.pop_front().unwrap_or(0)
        } else {
            0
        };
        let mut cell = SymCell {
            vaddr,
            buf: prefill,
        };
        let merged = cell.sym_access(value, self.mask, core, aspace);
        if self.mask != 0 {
            self.drained.push(merged);
        }
        merged
    }

    /// Write an output packet (pure stores; identical in both phases).
    pub fn send_packet(&mut self, data: &[u8], core: &mut CoreModel, aspace: &AddressSpace) {
        let base = self.base_vaddr + 8 * self.capacity as u64;
        let lines = (data.len() as u64).div_ceil(64).max(1);
        for k in 0..lines {
            let va = base + ((self.slot + k) % self.capacity as u64) * 64;
            core.mem_access(va, aspace.translate(va), true);
        }
        self.packets.push(data.to_vec());
    }

    /// SC side: take all packets written so far.
    pub fn drain_packets(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.packets)
    }

    /// SC side: take all event values recorded during play (log material).
    pub fn drain_values(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.drained)
    }

    /// Number of event values recorded.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::FramePolicy;
    use sim_core::{CoreModel, CoreParams};

    fn setup() -> (CoreModel, AddressSpace) {
        (
            CoreModel::new(CoreParams::default_params(), 0),
            AddressSpace::new(1 << 24, FramePolicy::Pinned, 0),
        )
    }

    #[test]
    fn sym_access_returns_value_in_play() {
        let (mut core, asp) = setup();
        let mut c = SymCell {
            vaddr: 0x10000,
            buf: 0,
        };
        assert_eq!(c.sym_access(42, Phase::Play.mask(), &mut core, &asp), 42);
        assert_eq!(c.buf, 42, "value lands in the buffer during play");
    }

    #[test]
    fn sym_access_returns_buffer_in_replay() {
        let (mut core, asp) = setup();
        let mut c = SymCell {
            vaddr: 0x10000,
            buf: 99,
        };
        assert_eq!(c.sym_access(42, Phase::Replay.mask(), &mut core, &asp), 99);
        assert_eq!(c.buf, 99, "buffer value survives replay access");
    }

    #[test]
    fn sym_access_charges_identical_cycles_in_both_phases() {
        let (mut core_p, asp) = setup();
        let (mut core_r, _) = setup();
        let mut a = SymCell {
            vaddr: 0x10000,
            buf: 0,
        };
        let mut b = SymCell {
            vaddr: 0x10000,
            buf: 7,
        };
        let t0 = core_p.now();
        a.sym_access(1, Phase::Play.mask(), &mut core_p, &asp);
        let play_cost = core_p.now() - t0;
        let t1 = core_r.now();
        b.sym_access(1, Phase::Replay.mask(), &mut core_r, &asp);
        let replay_cost = core_r.now() - t1;
        assert_eq!(play_cost, replay_cost, "Fig. 4 property");
    }

    #[test]
    fn naive_access_charges_differently_across_phases() {
        // Warm both cores identically first, then measure a long sequence;
        // the branch direction and the dirty-vs-clean line differ.
        let (mut core_p, asp) = setup();
        let (mut core_r, _) = setup();
        let mut total_p = 0;
        let mut total_r = 0;
        for k in 0..64u64 {
            let mut a = NaiveCell {
                vaddr: 0x10000 + k * 8,
                branch_pc: 0x20000,
                buf: 0,
            };
            let mut b = a.clone();
            let t0 = core_p.now();
            a.naive_access(5, Phase::Play, &mut core_p, &asp);
            total_p += core_p.now() - t0;
            let t1 = core_r.now();
            b.naive_access(5, Phase::Replay, &mut core_r, &asp);
            total_r += core_r.now() - t1;
        }
        assert_ne!(total_p, total_r, "asymmetric cost is the point");
    }

    #[test]
    fn st_poll_on_empty_buffer_returns_none_but_charges() {
        let (mut core, asp) = setup();
        let mut st = StBuffer::new(0x100000, 16);
        let t0 = core.now();
        assert!(st.tc_poll(10, 0, &mut core, &asp).is_none());
        assert!(core.now() > t0, "the sentinel check still costs cycles");
    }

    #[test]
    fn st_play_consume_stamps_icount() {
        let (mut core, asp) = setup();
        let mut st = StBuffer::new(0x100000, 16);
        st.sc_append(vec![1, 2, 3], 100, 90);
        // Not yet available at cycle 0 (the SC finishes writing at 100).
        assert!(st.tc_poll(5, 0, &mut core, &asp).is_none());
        let (data, ts) = st.tc_poll(7, 150, &mut core, &asp).expect("ready");
        assert_eq!(data, vec![1, 2, 3]);
        assert_eq!(ts, 7, "timestamp is the consuming instruction count");
    }

    #[test]
    fn st_replay_waits_for_icount() {
        let (mut core, asp) = setup();
        let mut st = StBuffer::new(0x100000, 16);
        st.enter_replay(vec![StEntry {
            ts: 500,
            data: vec![9],
            avail_at: 0,
            wire_at: 0,
        }]);
        assert!(st.tc_poll(499, 0, &mut core, &asp).is_none());
        let (data, ts) = st.tc_poll(500, 0, &mut core, &asp).expect("ready");
        assert_eq!((data, ts), (vec![9], 500));
    }

    #[test]
    fn st_ring_overrun_drops() {
        let (_, _) = setup();
        let mut st = StBuffer::new(0x100000, 2);
        assert!(st.sc_append(vec![1], 0, 0));
        assert!(st.sc_append(vec![2], 0, 0));
        assert!(!st.sc_append(vec![3], 0, 0), "full ring drops");
        assert_eq!(st.pending(), 2);
    }

    #[test]
    fn ts_event_value_roundtrip() {
        let (mut core, asp) = setup();
        let mut ts = TsBuffer::new(0x200000, 64);
        assert_eq!(ts.event_value(1111, &mut core, &asp), 1111);
        assert_eq!(ts.event_value(2222, &mut core, &asp), 2222);
        let logged = ts.drain_values();
        assert_eq!(logged, vec![1111, 2222]);

        // Replay: inject the logged values; produced values are ignored.
        let mut ts2 = TsBuffer::new(0x200000, 64);
        ts2.enter_replay(logged);
        assert_eq!(ts2.event_value(9999, &mut core, &asp), 1111);
        assert_eq!(ts2.event_value(8888, &mut core, &asp), 2222);
    }

    #[test]
    fn ts_packets_collected() {
        let (mut core, asp) = setup();
        let mut ts = TsBuffer::new(0x200000, 64);
        ts.send_packet(&[1; 100], &mut core, &asp);
        ts.send_packet(&[2; 100], &mut core, &asp);
        let pkts = ts.drain_packets();
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].len(), 100);
    }

    #[test]
    fn st_poll_sequence_identical_cycles_play_vs_replay() {
        // The crucial §3.5 property: a poll-poll-consume sequence costs the
        // same whether entries come from the SC (play) or the log (replay).
        let (mut core_p, asp) = setup();
        let (mut core_r, _) = setup();

        let mut st_p = StBuffer::new(0x100000, 16);
        st_p.sc_append(vec![7; 64], 0, 0);
        let t0 = core_p.now();
        assert!(st_p.tc_poll(1, 1000, &mut core_p, &asp).is_some());
        assert!(st_p.tc_poll(2, 1000, &mut core_p, &asp).is_none());
        let cost_p = core_p.now() - t0;

        let mut st_r = StBuffer::new(0x100000, 16);
        st_r.enter_replay(vec![StEntry {
            ts: 1,
            data: vec![7; 64],
            avail_at: 0,
            wire_at: 0,
        }]);
        let t1 = core_r.now();
        assert!(st_r.tc_poll(1, 1000, &mut core_r, &asp).is_some());
        assert!(st_r.tc_poll(2, 1000, &mut core_r, &asp).is_none());
        let cost_r = core_r.now() - t1;

        assert_eq!(cost_p, cost_r);
    }
}
