//! Virtual address space and physical frame assignment.
//!
//! The caches are physically indexed, so the virtual→physical assignment
//! changes conflict-miss behavior. Sanity "deterministically chooses the
//! frames that will be mapped to the TC's address space, so they are the
//! same during play and replay" (§3.6); an ordinary OS hands out whatever
//! frames are free, differently every run. [`FramePolicy`] selects between
//! the two.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sim_core::PAddr;

/// Page/frame size in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// How physical frames are assigned to the VM's pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FramePolicy {
    /// Identity mapping: page `n` gets frame `n` every run (the Sanity
    /// reserved-frame-range module, §4.2).
    Pinned,
    /// A per-run pseudorandom permutation of frames, keyed by the seed —
    /// what an unmodified OS effectively does.
    Random,
}

/// A flat virtual address space with per-page frame assignment.
///
/// The VM's whole world (code, statics, heap, stacks, ring buffers) lives in
/// one contiguous virtual region starting at 0; `translate` is a single
/// indexed load, keeping the interpreter hot path cheap.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// `frames[vpn]` is the physical frame number backing page `vpn`.
    frames: Vec<u32>,
}

impl AddressSpace {
    /// Create a space covering `size_bytes`, assigning frames per `policy`.
    /// `seed` matters only for [`FramePolicy::Random`].
    pub fn new(size_bytes: u64, policy: FramePolicy, seed: u64) -> Self {
        let pages = size_bytes.div_ceil(PAGE_SIZE) as usize;
        let mut frames: Vec<u32> = (0..pages as u32).collect();
        if policy == FramePolicy::Random {
            let mut rng = StdRng::seed_from_u64(seed);
            frames.shuffle(&mut rng);
        }
        AddressSpace { frames }
    }

    /// Number of mapped pages.
    pub fn pages(&self) -> usize {
        self.frames.len()
    }

    /// Translate a virtual address to a physical address.
    ///
    /// # Panics
    ///
    /// Panics if `vaddr` is outside the mapped region; the VM guarantees all
    /// generated addresses are in range (the region is sized at startup).
    #[inline]
    pub fn translate(&self, vaddr: u64) -> PAddr {
        let vpn = (vaddr / PAGE_SIZE) as usize;
        let frame = self.frames[vpn] as u64;
        frame * PAGE_SIZE + (vaddr % PAGE_SIZE)
    }

    /// True if `vaddr` lies within the mapped region.
    pub fn contains(&self, vaddr: u64) -> bool {
        ((vaddr / PAGE_SIZE) as usize) < self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_is_identity() {
        let a = AddressSpace::new(1 << 20, FramePolicy::Pinned, 0);
        assert_eq!(a.translate(0), 0);
        assert_eq!(a.translate(4096 + 17), 4096 + 17);
        assert_eq!(a.translate(123_456), 123_456);
    }

    #[test]
    fn random_permutes_but_preserves_offsets() {
        let a = AddressSpace::new(1 << 20, FramePolicy::Random, 42);
        // Offsets within a page are preserved.
        let base = a.translate(8192);
        assert_eq!(a.translate(8192 + 99), base + 99);
        // Some page must move (256 pages; identity permutation is absurdly
        // unlikely and the seed is fixed).
        let moved = (0..256u64).any(|p| a.translate(p * 4096) != p * 4096);
        assert!(moved);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = AddressSpace::new(1 << 20, FramePolicy::Random, 7);
        let b = AddressSpace::new(1 << 20, FramePolicy::Random, 7);
        let c = AddressSpace::new(1 << 20, FramePolicy::Random, 8);
        for p in 0..256u64 {
            assert_eq!(a.translate(p * 4096), b.translate(p * 4096));
        }
        let differs = (0..256u64).any(|p| a.translate(p * 4096) != c.translate(p * 4096));
        assert!(differs, "different seeds give different layouts");
    }

    #[test]
    fn random_is_a_bijection() {
        let a = AddressSpace::new(64 * 4096, FramePolicy::Random, 3);
        let mut seen = std::collections::HashSet::new();
        for p in 0..64u64 {
            assert!(seen.insert(a.translate(p * 4096)), "frame reused");
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let a = AddressSpace::new(2 * 4096, FramePolicy::Pinned, 0);
        assert!(a.contains(0));
        assert!(a.contains(2 * 4096 - 1));
        assert!(!a.contains(2 * 4096));
    }
}
