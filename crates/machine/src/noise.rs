//! Host-environment noise: the four Fig. 2 scenarios plus Sanity.
//!
//! Each [`Environment`] maps to a [`NoiseConfig`] describing the noise
//! sources active in that environment:
//!
//! | Source            | Mechanism in the model                            |
//! |-------------------|---------------------------------------------------|
//! | Preemption        | TC idles for the slice, caches/TLB get displaced  |
//! | Timer interrupts  | Periodic handler cost + small cache pollution     |
//! | Device interrupts | Same mechanism, attached to NIC deliveries        |
//! | Background tasks  | Poisson DMA traffic on the shared bus             |
//! | Dirty start       | Caches start polluted instead of flushed          |
//! | Frequency scaling | Governor policy (OnDemand / Turbo vs. Fixed)      |
//! | Frame assignment  | Random vs. pinned physical frames                 |
//!
//! The injector is driven by the *TC cycle clock*: the VM calls
//! [`NoiseInjector::apply`] periodically (every few instructions), and all
//! events whose scheduled cycle has passed are applied. All randomness is
//! seeded, so a given (environment, seed) pair is exactly reproducible while
//! different seeds model run-to-run variation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sim_core::{CoreModel, Cycles, FreqPolicy};

use crate::addr::FramePolicy;

/// Named execution environments from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Environment {
    /// Multi-user mode with GUI and networking ("User, noisy" / "Dirty").
    UserNoisy,
    /// Single-user mode from a RAM disk ("User, quiet" / "Clean").
    UserQuiet,
    /// Kernel mode, interrupts still enabled ("Kernel, noisy").
    KernelMode,
    /// Kernel mode, IRQs off, caches/TLB flushed, pinned core
    /// ("Kernel, quiet").
    KernelQuiet,
    /// The full Sanity configuration (Table 1: everything mitigated).
    Sanity,
}

impl Environment {
    /// The noise profile of this environment.
    pub fn noise_config(self) -> NoiseConfig {
        match self {
            Environment::UserNoisy => NoiseConfig {
                preempt_mean_interval: Some(1_500_000),
                preempt_mean_duration: 400_000,
                timer_irq_interval: Some(100_000),
                irq_handler_cycles: 4_000,
                irq_cache_pollution: 0.06,
                background_dma_mean_interval: Some(250_000),
                background_dma_bytes: 8_192,
                dirty_start: true,
                freq_policy: FreqPolicy::OnDemand { min_ratio: 0.55 },
                frame_policy: FramePolicy::Random,
            },
            Environment::UserQuiet => NoiseConfig {
                preempt_mean_interval: Some(12_000_000),
                preempt_mean_duration: 80_000,
                timer_irq_interval: Some(100_000),
                irq_handler_cycles: 3_000,
                irq_cache_pollution: 0.03,
                background_dma_mean_interval: Some(4_000_000),
                background_dma_bytes: 2_048,
                dirty_start: true,
                freq_policy: FreqPolicy::OnDemand { min_ratio: 0.9 },
                frame_policy: FramePolicy::Random,
            },
            Environment::KernelMode => NoiseConfig {
                preempt_mean_interval: None,
                preempt_mean_duration: 0,
                timer_irq_interval: Some(100_000),
                irq_handler_cycles: 3_000,
                irq_cache_pollution: 0.03,
                background_dma_mean_interval: None,
                background_dma_bytes: 0,
                dirty_start: true,
                freq_policy: FreqPolicy::Turbo {
                    boost_ratio: 1.25,
                    budget_cycles: 3_000_000,
                },
                frame_policy: FramePolicy::Random,
            },
            Environment::KernelQuiet => NoiseConfig {
                preempt_mean_interval: None,
                preempt_mean_duration: 0,
                timer_irq_interval: None,
                irq_handler_cycles: 0,
                irq_cache_pollution: 0.0,
                background_dma_mean_interval: None,
                background_dma_bytes: 0,
                dirty_start: false, // Caches and TLB are flushed.
                freq_policy: FreqPolicy::Turbo {
                    boost_ratio: 1.25,
                    budget_cycles: 3_000_000,
                },
                // Kernel-mode allocations come from a reserved contiguous
                // range, so frames repeat across runs.
                frame_policy: FramePolicy::Pinned,
            },
            Environment::Sanity => NoiseConfig {
                preempt_mean_interval: None,
                preempt_mean_duration: 0,
                timer_irq_interval: None,
                irq_handler_cycles: 0,
                irq_cache_pollution: 0.0,
                background_dma_mean_interval: None,
                background_dma_bytes: 0,
                dirty_start: false,
                freq_policy: FreqPolicy::Fixed,
                frame_policy: FramePolicy::Pinned,
            },
        }
    }

    /// All environments, in decreasing-noise order.
    pub fn all() -> [Environment; 5] {
        [
            Environment::UserNoisy,
            Environment::UserQuiet,
            Environment::KernelMode,
            Environment::KernelQuiet,
            Environment::Sanity,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Environment::UserNoisy => "User, noisy",
            Environment::UserQuiet => "User, quiet",
            Environment::KernelMode => "Kernel, noisy",
            Environment::KernelQuiet => "Kernel, quiet",
            Environment::Sanity => "Sanity",
        }
    }
}

/// The tunable noise profile (see [`Environment::noise_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Mean cycles between preemptions (`None` = never preempted).
    pub preempt_mean_interval: Option<Cycles>,
    /// Mean duration of one preemption, in cycles.
    pub preempt_mean_duration: Cycles,
    /// Period of the timer interrupt on the TC (`None` = IRQs off/steered).
    pub timer_irq_interval: Option<Cycles>,
    /// Cost of one interrupt handler invocation, in cycles.
    pub irq_handler_cycles: Cycles,
    /// Fraction of L1 displaced by each handler invocation.
    pub irq_cache_pollution: f64,
    /// Mean cycles between background DMA bursts (`None` = none).
    pub background_dma_mean_interval: Option<Cycles>,
    /// Size of one background DMA burst.
    pub background_dma_bytes: u64,
    /// Whether caches start polluted (true) or flushed (false).
    pub dirty_start: bool,
    /// Frequency policy of this environment.
    pub freq_policy: FreqPolicy,
    /// Frame assignment policy of this environment.
    pub frame_policy: FramePolicy,
}

impl NoiseConfig {
    /// A completely silent profile (used in unit tests and ablations).
    pub fn silent() -> Self {
        Environment::Sanity.noise_config()
    }
}

/// Applies a [`NoiseConfig`]'s scheduled events to the core.
#[derive(Debug)]
pub struct NoiseInjector {
    cfg: NoiseConfig,
    rng: StdRng,
    next_preempt: Option<Cycles>,
    next_timer: Option<Cycles>,
    next_dma: Option<Cycles>,
    preemptions: u64,
    irqs: u64,
    dma_bursts: u64,
}

/// Sample an exponential-ish interval with mean `mean` (clamped to keep the
/// schedule progressing).
fn sample_interval(rng: &mut StdRng, mean: Cycles) -> Cycles {
    let u: f64 = rng.gen_range(1e-6..1.0f64);
    let x = -u.ln() * mean as f64;
    (x as Cycles).clamp(mean / 8, mean * 8).max(1)
}

impl NoiseInjector {
    /// Create an injector; `seed` individualizes this run.
    pub fn new(cfg: NoiseConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let next_preempt = cfg
            .preempt_mean_interval
            .map(|m| sample_interval(&mut rng, m));
        let next_timer = cfg.timer_irq_interval.map(|m| {
            // Random initial phase.
            rng.gen_range(0..m.max(1))
        });
        let next_dma = cfg
            .background_dma_mean_interval
            .map(|m| sample_interval(&mut rng, m));
        NoiseInjector {
            cfg,
            rng,
            next_preempt,
            next_timer,
            next_dma,
            preemptions: 0,
            irqs: 0,
            dma_bursts: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &NoiseConfig {
        &self.cfg
    }

    /// Apply all events scheduled at or before the core's current cycle.
    /// Returns the number of cycles injected (idle time); cache pollution
    /// and DMA scheduling are applied as side effects.
    pub fn apply(&mut self, core: &mut CoreModel) -> Cycles {
        let mut injected = 0;
        let now = core.now();

        if let Some(t) = self.next_timer {
            if t <= now {
                let mut fire = t;
                while fire <= now {
                    let cost = self.cfg.irq_handler_cycles
                        + self.rng.gen_range(0..=self.cfg.irq_handler_cycles.max(1));
                    core.idle(cost);
                    injected += cost;
                    if self.cfg.irq_cache_pollution > 0.0 {
                        core.pollute_caches(
                            self.cfg.irq_cache_pollution,
                            self.cfg.irq_cache_pollution / 2.0,
                            self.rng.gen(),
                        );
                    }
                    self.irqs += 1;
                    fire += self.cfg.timer_irq_interval.expect("timer configured");
                }
                self.next_timer = Some(fire);
            }
        }

        if let Some(t) = self.next_preempt {
            if t <= now {
                let dur = sample_interval(&mut self.rng, self.cfg.preempt_mean_duration.max(1));
                core.idle(dur);
                injected += dur;
                // The other task displaces much of the cache and the TLB.
                core.pollute_caches(0.7, 0.5, self.rng.gen());
                core.tlb_flush();
                self.preemptions += 1;
                let mean = self
                    .cfg
                    .preempt_mean_interval
                    .expect("preemption configured");
                self.next_preempt = Some(core.now() + sample_interval(&mut self.rng, mean));
            }
        }

        if let Some(t) = self.next_dma {
            if t <= now {
                let bytes = self.cfg.background_dma_bytes;
                core.bus_mut().schedule_dma(now, bytes);
                self.dma_bursts += 1;
                let mean = self
                    .cfg
                    .background_dma_mean_interval
                    .expect("dma configured");
                self.next_dma = Some(now + sample_interval(&mut self.rng, mean));
            }
        }

        injected
    }

    /// Cycle of the earliest scheduled event, if any source is active.
    ///
    /// [`apply`](Self::apply) is a guaranteed no-op (and draws no RNG)
    /// before this cycle, which is what lets the machine's event-driven
    /// tick scheduler skip the call entirely between events.
    pub fn next_event(&self) -> Option<Cycles> {
        [self.next_timer, self.next_preempt, self.next_dma]
            .into_iter()
            .flatten()
            .min()
    }

    /// `(preemptions, irqs, dma_bursts)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.preemptions, self.irqs, self.dma_bursts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::CoreParams;

    fn run_with(env: Environment, seed: u64, work_cycles: u64) -> (Cycles, u64, u64, u64) {
        let mut core = CoreModel::new(CoreParams::default_params(), seed);
        let mut inj = NoiseInjector::new(env.noise_config(), seed);
        // Fixed amount of work in 1k-cycle quanta; noise stretches the
        // total time, which is what we measure.
        for _ in 0..work_cycles / 1_000 {
            core.idle(1_000);
            inj.apply(&mut core);
        }
        let (p, i, d) = inj.stats();
        (core.now(), p, i, d)
    }

    #[test]
    fn sanity_environment_is_silent() {
        let (t, p, i, d) = run_with(Environment::Sanity, 1, 1_000_000);
        assert_eq!((p, i, d), (0, 0, 0));
        assert_eq!(t, 1_000_000);
    }

    #[test]
    fn noisy_environment_fires_everything() {
        let (t, p, i, d) = run_with(Environment::UserNoisy, 1, 20_000_000);
        assert!(p > 0, "preemptions occurred");
        assert!(i > 0, "timer irqs occurred");
        assert!(d > 0, "background dma occurred");
        assert!(
            t > 20_000_000 * 105 / 100,
            "noise stretched the run by >5%: {t}"
        );
    }

    #[test]
    fn kernel_quiet_has_no_irqs() {
        let (_, p, i, d) = run_with(Environment::KernelQuiet, 3, 10_000_000);
        assert_eq!((p, i, d), (0, 0, 0));
    }

    #[test]
    fn noise_ordering_user_noisy_worst() {
        let t_noisy = run_with(Environment::UserNoisy, 5, 10_000_000).0;
        let t_quiet = run_with(Environment::UserQuiet, 5, 10_000_000).0;
        let t_sanity = run_with(Environment::Sanity, 5, 10_000_000).0;
        assert!(t_noisy > t_quiet, "{t_noisy} vs {t_quiet}");
        assert!(t_quiet >= t_sanity);
    }

    #[test]
    fn injector_is_seed_deterministic() {
        let a = run_with(Environment::UserNoisy, 9, 5_000_000);
        let b = run_with(Environment::UserNoisy, 9, 5_000_000);
        assert_eq!(a, b);
        let c = run_with(Environment::UserNoisy, 10, 5_000_000);
        assert_ne!(a.0, c.0, "different seed, different schedule");
    }

    #[test]
    fn environment_labels_are_distinct() {
        let mut set = std::collections::HashSet::new();
        for e in Environment::all() {
            assert!(set.insert(e.label()));
        }
    }

    #[test]
    fn sample_interval_stays_in_band() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x = sample_interval(&mut rng, 1000);
            assert!((125..=8000).contains(&x), "{x} out of band");
        }
    }
}
