//! The simulated machine: timed core + supporting core + devices.
//!
//! [`Machine`] is the platform the VM executes against. It owns the TC's
//! [`CoreModel`], the frequency governor (cycles → wall-clock), the address
//! space, the two ring buffers, the NIC and storage device, and the noise
//! injector for the configured [`Environment`].
//!
//! The supporting core is modeled by its externally visible effects:
//!
//! * received packets are DMA'd over the shared bus, then appear in the S-T
//!   buffer after a fixed SC processing latency;
//! * transmitted packets leave the T-S buffer after a fixed SC latency;
//! * during play the SC periodically flushes the event log to storage; the
//!   resulting DMA is the *residual* noise source that remains even under
//!   the full Sanity configuration (§6.9) — replay performs the mirror-image
//!   log *reads* on the same cadence (play/replay I/O is "reduced", not
//!   eliminated — Table 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sim_core::{CoreModel, CoreParams, CoreStats, Cycles, FrequencyGovernor, InstrTiming, MemRef};

use crate::addr::{AddressSpace, FramePolicy};
use crate::device::{Nic, Storage, StorageKind, TxRecord};
use crate::noise::{Environment, NoiseConfig, NoiseInjector};
use crate::ringbuf::{Phase, StBuffer, StEntry, TsBuffer};
use crate::sched::{ComponentId, TickQueue};

/// Kind of a recorded event mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarkKind {
    /// A packet was consumed from the S-T buffer.
    PacketIn,
    /// A packet was written to the T-S buffer.
    PacketOut,
    /// A wall-clock read went through the T-S buffer.
    TimeRead,
}

/// A timestamped point in the execution, used to compare the progress of
/// play and replay event-by-event (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventMark {
    /// What happened.
    pub kind: MarkKind,
    /// TC cycle at the event.
    pub cycle: Cycles,
    /// Wall-clock picoseconds at the event.
    pub wall_ps: u128,
}

/// Simulated memory map (virtual addresses).
pub mod map {
    /// Base of the bytecode region (matches `jbc::builder::CODE_BASE`).
    pub const CODE: u64 = 0x0000_0000;
    /// Base of the static-field area.
    pub const STATICS: u64 = 0x0100_0000;
    /// Base of the VM heap.
    pub const HEAP: u64 = 0x0200_0000;
    /// Base of the thread-stack region (locals/frames).
    pub const STACKS: u64 = 0x0A00_0000;
    /// Base of the S-T ring buffer.
    pub const ST_BUF: u64 = 0x0B00_0000;
    /// Base of the T-S ring buffer.
    pub const TS_BUF: u64 = 0x0B10_0000;
    /// VMM scratch (naive-cell branch PCs and the like).
    pub const VMM: u64 = 0x0B20_0000;
    /// Total mapped size.
    pub const TOTAL: u64 = 0x0B30_0000;
}

/// Seeds for the per-run stochastic components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Seeds {
    /// Noise injector schedule.
    pub noise: u64,
    /// Bus arbitration jitter.
    pub bus: u64,
    /// Frequency governor wander.
    pub freq: u64,
    /// Frame assignment permutation.
    pub frames: u64,
    /// Storage latency variance.
    pub storage: u64,
}

impl Seeds {
    /// Spread a single run number into independent component seeds.
    pub fn from_run(run: u64) -> Self {
        let mix = |salt: u64| {
            run.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(salt)
                .rotate_left(17)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        };
        Seeds {
            noise: mix(1),
            bus: mix(2),
            freq: mix(3),
            frames: mix(4),
            storage: mix(5),
        }
    }
}

/// Machine configuration: Table 1 as toggles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Microarchitecture of the timed core.
    pub core: CoreParams,
    /// Nominal clock, Hz. All experiments use a 100 MHz-class simulated
    /// clock; reported results are relative, so the constant cancels.
    pub nominal_hz: u64,
    /// The host environment (noise profile, frequency policy, frames).
    pub env: Environment,
    /// Confine device interrupts to the supporting core (§3.3). When false,
    /// every NIC delivery also interrupts the timed core.
    pub tc_sc_split: bool,
    /// Use the branch-free symmetric buffer access (§3.5). When false, the
    /// naive flag-checking access is used (ablation).
    pub symmetric_access: bool,
    /// Pad storage requests to their worst case (§3.7).
    pub io_padding: bool,
    /// Storage device kind.
    pub storage: StorageKind,
    /// Flush caches/TLB/BTB and quiesce before the run starts (§3.6).
    pub flush_on_start: bool,
    /// Quiescence period after the flush, in cycles.
    pub quiesce_cycles: Cycles,
    /// SC log-flush cadence in cycles (0 disables housekeeping DMA).
    pub sc_log_flush_interval: Cycles,
    /// SC heartbeat cadence (0 disables). The supporting core's own
    /// housekeeping (status pages, device maintenance, log bookkeeping)
    /// periodically occupies the shared memory bus; the TC loses a small,
    /// run-specific number of cycles each time. This is the §6.9 residual:
    /// "contention between the SC and the TC on the memory bus might affect
    /// different executions in slightly different ways".
    pub sc_heartbeat_interval: Cycles,
    /// Worst-case TC stall per heartbeat, cycles.
    pub sc_heartbeat_stall_max: Cycles,
    /// Override the environment's frame policy (ablations).
    pub frame_policy_override: Option<FramePolicy>,
    /// Override the environment's frequency policy (ablations).
    pub freq_policy_override: Option<sim_core::FreqPolicy>,
    /// Drive post-instruction housekeeping from the discrete-event tick
    /// queue ([`crate::sched`]) instead of re-scanning every component
    /// after every instruction. Host-side speed only: simulated time is
    /// bit-identical either way (the determinism goldens pin this).
    pub event_ticking: bool,
}

impl MachineConfig {
    /// The full Sanity configuration: every Table 1 mitigation on.
    pub fn sanity() -> Self {
        MachineConfig {
            core: CoreParams::default_params(),
            nominal_hz: 100_000_000,
            env: Environment::Sanity,
            tc_sc_split: true,
            symmetric_access: true,
            io_padding: true,
            storage: StorageKind::RamDisk,
            flush_on_start: true,
            quiesce_cycles: 10_000,
            sc_log_flush_interval: 1_000_000,
            sc_heartbeat_interval: 400_000,
            sc_heartbeat_stall_max: 5_000,
            frame_policy_override: None,
            freq_policy_override: None,
            event_ticking: true,
        }
    }

    /// An ordinary host in the given environment (no TDR mitigations).
    pub fn host(env: Environment) -> Self {
        MachineConfig {
            core: CoreParams::default_params(),
            nominal_hz: 100_000_000,
            env,
            tc_sc_split: false,
            symmetric_access: false,
            io_padding: false,
            storage: StorageKind::RamDisk,
            flush_on_start: env == Environment::KernelQuiet,
            quiesce_cycles: 0,
            sc_log_flush_interval: 0,
            // Hosts without the split get their noise from the environment.
            sc_heartbeat_interval: 0,
            sc_heartbeat_stall_max: 0,
            frame_policy_override: None,
            freq_policy_override: None,
            event_ticking: true,
        }
    }
}

/// The simulated machine. See the [module docs](self).
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    noise_cfg: NoiseConfig,
    core: CoreModel,
    governor: FrequencyGovernor,
    aspace: AddressSpace,
    st: StBuffer,
    ts: TsBuffer,
    nic: Nic,
    storage: Storage,
    noise: NoiseInjector,
    phase: Phase,
    tx: Vec<TxRecord>,
    /// Cycle up to which the governor has been advanced.
    synced: Cycles,
    /// Log bytes produced since the last SC flush.
    pending_log_bytes: u64,
    next_log_flush: Cycles,
    /// Pending device-IRQ deliveries to the TC (only when the TC/SC split
    /// is disabled).
    pending_tc_irqs: std::collections::VecDeque<Cycles>,
    log_dma_bytes: u64,
    marks: Vec<EventMark>,
    /// SC-side nondeterminism (heartbeat interference, processing jitter).
    sc_rng: StdRng,
    next_heartbeat: Cycles,
    /// Discrete-event schedule of the housekeeping components.
    tickq: TickQueue,
}

impl Machine {
    /// Build a machine for one run.
    pub fn new(cfg: MachineConfig, seeds: Seeds) -> Self {
        let noise_cfg = cfg.env.noise_config();
        let frame_policy = cfg.frame_policy_override.unwrap_or(match cfg.env {
            Environment::Sanity => FramePolicy::Pinned,
            _ => noise_cfg.frame_policy,
        });
        let freq_policy = cfg.freq_policy_override.unwrap_or(noise_cfg.freq_policy);
        let core = CoreModel::new(cfg.core, seeds.bus);
        let governor = FrequencyGovernor::new(cfg.nominal_hz, freq_policy, seeds.freq);
        let mut m = Machine {
            core,
            governor,
            aspace: AddressSpace::new(map::TOTAL, frame_policy, seeds.frames),
            st: StBuffer::new(map::ST_BUF, 240),
            ts: TsBuffer::new(map::TS_BUF, 4096),
            nic: Nic::new(),
            storage: Storage::new(cfg.storage, cfg.io_padding, seeds.storage),
            noise: NoiseInjector::new(noise_cfg, seeds.noise),
            phase: Phase::Play,
            tx: Vec::new(),
            synced: 0,
            pending_log_bytes: 0,
            next_log_flush: cfg.sc_log_flush_interval.max(1),
            pending_tc_irqs: std::collections::VecDeque::new(),
            log_dma_bytes: 0,
            marks: Vec::new(),
            sc_rng: StdRng::seed_from_u64(seeds.noise ^ 0x5c5c),
            next_heartbeat: cfg.sc_heartbeat_interval.max(1),
            tickq: TickQueue::new(),
            noise_cfg,
            cfg,
        };
        m.rearm();
        m
    }

    fn mark(&mut self, kind: MarkKind) {
        let cycle = self.core.now();
        self.sync();
        self.marks.push(EventMark {
            kind,
            cycle,
            wall_ps: self.governor.elapsed_ps(),
        });
    }

    /// The active configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current phase (play or replay).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Prepare the machine state for the run: flush + quiesce under Sanity
    /// rules, or pollute the caches for dirty-start environments (§3.6).
    ///
    /// Without the flush, the machine starts with whatever the previous
    /// activity left in the caches — different every run, which is exactly
    /// why the paper flushes and quiesces before execution begins.
    pub fn start_run(&mut self) {
        if self.cfg.flush_on_start {
            let flush_cost = self.core.flush_all();
            self.core.idle(flush_cost + self.cfg.quiesce_cycles);
        }
        if self.noise_cfg.dirty_start || !self.cfg.flush_on_start {
            let salt = self.sc_rng.gen::<u64>();
            self.core.dirty_start(salt);
        }
        if !self.cfg.flush_on_start {
            // No quiescence period: whatever DMA the devices still had in
            // flight (the reason §3.6 waits before starting) lands on the
            // bus during early execution, differently every run.
            let leftover = self.sc_rng.gen_range(0..200_000u64);
            let now = self.core.now();
            self.core.bus_mut().schedule_dma(now, leftover);
        }
        self.sync();
    }

    /// Switch to replay, preloading logged S-T entries and T-S values.
    ///
    /// The SC's replay-side work mirrors play: for every logged packet it
    /// *reads* the log and writes the S-T buffer, producing bus traffic on
    /// the same schedule as the original NIC DMA — record and replay I/O is
    /// "reduced, not eliminated" (Table 1), and this is what keeps the bus
    /// contention pattern aligned between the phases.
    pub fn enter_replay(&mut self, st_entries: Vec<StEntry>, ts_values: Vec<u64>) {
        self.phase = Phase::Replay;
        for e in &st_entries {
            self.core
                .bus_mut()
                .schedule_dma(e.wire_at, e.data.len() as u64);
        }
        self.st.enter_replay(st_entries);
        self.ts.enter_replay(ts_values);
    }

    // ---- clock -----------------------------------------------------------

    /// Current TC cycle.
    pub fn now_cycles(&self) -> Cycles {
        self.core.now()
    }

    /// Current wall-clock picoseconds (via the frequency governor).
    pub fn now_ps(&mut self) -> u128 {
        self.sync();
        self.governor.elapsed_ps()
    }

    fn sync(&mut self) {
        let now = self.core.now();
        if now > self.synced {
            self.governor.advance(now - self.synced);
            self.synced = now;
        }
    }

    // ---- instruction execution -------------------------------------------

    /// Execute one instruction on the TC.
    ///
    /// `refs` are `(vaddr, is_write)` pairs (at most 4); `branch` is
    /// `(taken, target_vaddr)`. The machine translates addresses, charges
    /// the core model, applies due noise events, and advances the governor.
    pub fn step_instr(
        &mut self,
        base: Cycles,
        pc_vaddr: u64,
        refs: &[(u64, bool)],
        branch: Option<(bool, u64)>,
    ) -> InstrTiming {
        debug_assert!(refs.len() <= 4, "at most 4 data refs per instruction");
        let mut buf = [MemRef {
            vaddr: 0,
            paddr: 0,
            write: false,
        }; 4];
        let n = refs.len().min(4);
        for (i, &(va, w)) in refs.iter().take(4).enumerate() {
            buf[i] = MemRef {
                vaddr: va,
                paddr: self.aspace.translate(va),
                write: w,
            };
        }
        let pc = (pc_vaddr, self.aspace.translate(pc_vaddr));
        let br = branch.map(|(taken, tv)| (taken, self.aspace.translate(tv)));
        let t = self.core.step(base, pc, &buf[..n], br);
        self.post_step();
        t
    }

    /// Let cycles pass without retiring instructions (used by the VM for
    /// calibrated delays and by I/O waits).
    pub fn idle(&mut self, cycles: Cycles) {
        self.core.idle(cycles);
        self.post_step();
    }

    fn post_step(&mut self) {
        // Discrete-event gate: skip the whole housekeeping block unless a
        // component is actually due. The governor sync below stays
        // UNCONDITIONAL — non-Fixed governors advance in chunks whose
        // float truncation depends on call granularity, so wall-clock time
        // is only reproducible if `sync` runs on exactly the same schedule
        // in every configuration.
        if !self.cfg.event_ticking || self.tickq.any_due(self.core.now()) {
            self.run_housekeeping();
        }
        self.sync();
    }

    /// One pass over the housekeeping components, in canonical order —
    /// exactly the body the scan-everything design ran on every call. Each
    /// component re-checks its own due condition here, so a conservative
    /// (stale/early) tick-queue entry can never change simulated time.
    fn run_housekeeping(&mut self) {
        self.tickq.drain_due(self.core.now());
        self.noise.apply(&mut self.core);
        // Device IRQs on the TC (no TC/SC split): each pending delivery
        // whose time has come costs a handler invocation.
        while let Some(&t) = self.pending_tc_irqs.front() {
            if t <= self.core.now() {
                self.pending_tc_irqs.pop_front();
                self.core.idle(2_500);
                self.core.pollute_caches(0.04, 0.02, t);
            } else {
                break;
            }
        }
        // SC heartbeat: bounded, run-specific bus interference (§6.9).
        if self.cfg.sc_heartbeat_interval > 0 && self.core.now() >= self.next_heartbeat {
            let stall = self.sc_rng.gen_range(0..=self.cfg.sc_heartbeat_stall_max);
            let now = self.core.now();
            self.core.bus_mut().schedule_dma(now, 256);
            self.core.idle(stall);
            self.next_heartbeat = self.core.now() + self.cfg.sc_heartbeat_interval;
        }
        // SC log housekeeping (both phases: write during play, read during
        // replay — same cadence, same DMA size, different direction).
        if self.cfg.sc_log_flush_interval > 0
            && self.pending_log_bytes > 0
            && self.core.now() >= self.next_log_flush
        {
            let bytes = self.pending_log_bytes + 64; // Flush header.
            let now = self.core.now();
            self.core.bus_mut().schedule_dma(now, bytes);
            self.log_dma_bytes += bytes;
            self.pending_log_bytes = 0;
            self.next_log_flush = self.core.now() + self.cfg.sc_log_flush_interval;
        }
        self.rearm();
    }

    /// Re-arm the tick queue with every component's current next due
    /// cycle. Conservative duplicates are harmless (lazy deletion).
    fn rearm(&mut self) {
        if let Some(t) = self.noise.next_event() {
            self.tickq.push(t, ComponentId::Noise);
        }
        if let Some(&t) = self.pending_tc_irqs.front() {
            self.tickq.push(t, ComponentId::TcIrq);
        }
        if self.cfg.sc_heartbeat_interval > 0 {
            self.tickq.push(self.next_heartbeat, ComponentId::Heartbeat);
        }
        if self.cfg.sc_log_flush_interval > 0 && self.pending_log_bytes > 0 {
            self.tickq.push(self.next_log_flush, ComponentId::LogFlush);
        }
    }

    /// Account `bytes` of pending SC log material, arming the log-flush
    /// component if this is the first pending byte since the last flush.
    fn note_log_bytes(&mut self, bytes: u64) {
        if self.pending_log_bytes == 0 && bytes > 0 && self.cfg.sc_log_flush_interval > 0 {
            self.tickq.push(self.next_log_flush, ComponentId::LogFlush);
        }
        self.pending_log_bytes += bytes;
    }

    // ---- network ----------------------------------------------------------

    /// Deliver a packet from the wire at absolute cycle `at` (play only).
    /// The NIC DMAs it across the shared bus; it becomes visible in the S-T
    /// buffer after the SC's processing latency. Returns false if the ring
    /// was full and the packet was dropped.
    pub fn deliver_packet(&mut self, at: Cycles, data: Vec<u8>) -> bool {
        debug_assert!(
            matches!(self.phase, Phase::Play),
            "during replay inputs come from the log"
        );
        self.nic.note_rx(data.len());
        let dma_end = self.core.bus_mut().schedule_dma(at, data.len() as u64);
        let avail = dma_end + self.nic.sc_rx_cycles;
        if !self.cfg.tc_sc_split {
            self.pending_tc_irqs.push_back(avail);
            self.tickq.push(avail, ComponentId::TcIrq);
        }
        self.st.sc_append(data, avail, at)
    }

    /// TC-side poll of the S-T buffer at instruction count `icount`.
    /// Returns `(payload, virtual timestamp)` if an entry was consumed.
    pub fn poll_packet(&mut self, icount: u64) -> Option<(Vec<u8>, u64)> {
        let now = self.core.now();
        let r = self.st.tc_poll(icount, now, &mut self.core, &self.aspace);
        if r.is_some() {
            // Play: the entry (payload + timestamp) must be written to the
            // log (§6.5). Replay: the SC reads the same bytes back — the
            // housekeeping DMA cadence is symmetric either way.
            let bytes = r.as_ref().map(|(d, _)| d.len() as u64 + 16).unwrap_or(0);
            self.note_log_bytes(bytes);
            self.mark(MarkKind::PacketIn);
        }
        self.post_step();
        r
    }

    /// Record a logged event value (e.g. `System.nanoTime`) through the T-S
    /// buffer with the configured access discipline. Returns the value the
    /// program must use (produced during play, injected during replay).
    pub fn event_value(&mut self, produced: u64) -> u64 {
        let v = if self.cfg.symmetric_access {
            self.ts.event_value(produced, &mut self.core, &self.aspace)
        } else {
            // Ablation: the naive access. Functionally it consumes the same
            // logged values, but timing-wise it adds a phase-dependent
            // branch, an asymmetric (dirty-vs-clean) cell access, and the
            // record-vs-inject code-path cost difference (§2.5: recording
            // reads a device register, injecting walks the log).
            let replay = matches!(self.phase, Phase::Replay);
            let injected = self.ts.event_value(produced, &mut self.core, &self.aspace);
            self.core.idle(if replay { 3_200 } else { 800 });
            let pc = map::VMM + 0x100;
            let ppc = self.aspace.translate(pc);
            self.core.branch_only(ppc, !replay, ppc + 64);
            let cell = map::VMM + 0x200;
            let pcell = self.aspace.translate(cell);
            self.core.mem_access(cell, pcell, !replay);
            injected
        };
        // Both phases move these 8 bytes between the SC and the log.
        self.note_log_bytes(8);
        self.mark(MarkKind::TimeRead);
        self.post_step();
        v
    }

    /// Transmit a packet: TC writes it to the T-S buffer; the SC forwards it
    /// to the wire. The send is recorded with its cycle and wall time.
    pub fn send_packet(&mut self, data: &[u8]) {
        self.ts.send_packet(data, &mut self.core, &self.aspace);
        self.nic.note_tx(data.len());
        let now = self.core.now();
        let tx_cycle = now + self.nic.sc_tx_cycles;
        // DMA of the payload to the NIC.
        self.core.bus_mut().schedule_dma(now, data.len() as u64);
        self.sync();
        let extra_ps = FrequencyGovernor::nominal_ps(self.cfg.nominal_hz, self.nic.sc_tx_cycles);
        self.tx.push(TxRecord {
            cycle: tx_cycle,
            wall_ps: self.governor.elapsed_ps() + extra_ps,
            data: data.to_vec(),
        });
        self.mark(MarkKind::PacketOut);
        self.post_step();
    }

    /// Read `bytes` from storage at `lba`; the TC blocks for the device
    /// latency (padded to worst case if configured) and the data is DMA'd.
    pub fn storage_read(&mut self, lba: u64, bytes: u64) -> Cycles {
        let lat = self.storage.read_latency(lba, bytes);
        let start = self.core.now() + lat;
        self.core.bus_mut().schedule_dma(start, bytes);
        self.core.idle(lat);
        self.post_step();
        lat
    }

    // ---- accessors ---------------------------------------------------------

    /// Touch a contiguous simulated region line by line (bulk array fills,
    /// packet copies into the heap). Charges one access per 64-byte line.
    pub fn bulk_touch(&mut self, base_vaddr: u64, bytes: u64, write: bool) {
        let lines = bytes.div_ceil(64).max(1);
        for k in 0..lines {
            let va = base_vaddr + k * 64;
            let pa = self.aspace.translate(va);
            self.core.mem_access(va, pa, write);
        }
        self.post_step();
    }

    /// Cycle at which the next S-T entry becomes observable, if any.
    pub fn next_packet_ready_at(&self) -> Option<Cycles> {
        self.st.front_avail()
    }

    /// Take the transmitted-packet trace recorded so far.
    pub fn take_tx(&mut self) -> Vec<TxRecord> {
        std::mem::take(&mut self.tx)
    }

    /// Take the event-mark timeline recorded so far.
    pub fn take_marks(&mut self) -> Vec<EventMark> {
        std::mem::take(&mut self.marks)
    }

    /// Take the packets consumed during play (log material).
    pub fn take_consumed_packets(&mut self) -> Vec<StEntry> {
        self.st.take_consumed_log()
    }

    /// Event values drained from the T-S buffer during play (log material).
    pub fn drain_logged_values(&mut self) -> Vec<u64> {
        self.ts.drain_values()
    }

    /// Number of entries pending in the S-T buffer.
    pub fn st_pending(&self) -> usize {
        self.st.pending()
    }

    /// Core statistics snapshot.
    pub fn core_stats(&self) -> CoreStats {
        self.core.stats()
    }

    /// Total bytes of log-flush DMA issued by the SC.
    pub fn log_dma_bytes(&self) -> u64 {
        self.log_dma_bytes
    }

    /// Direct access to the core (benches and white-box tests).
    pub fn core_mut(&mut self) -> &mut CoreModel {
        &mut self.core
    }

    /// The address space (white-box tests).
    pub fn aspace(&self) -> &AddressSpace {
        &self.aspace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sanity_machine(run: u64) -> Machine {
        Machine::new(MachineConfig::sanity(), Seeds::from_run(run))
    }

    #[test]
    fn start_run_flushes_under_sanity() {
        let mut m = sanity_machine(1);
        m.start_run();
        assert!(m.now_cycles() >= 10_000, "quiescence period elapsed");
    }

    #[test]
    fn step_instr_advances_clock_and_wall() {
        let mut m = sanity_machine(1);
        m.start_run();
        let c0 = m.now_cycles();
        m.step_instr(10, 0x1_0000, &[(map::HEAP, false)], None);
        assert!(m.now_cycles() > c0);
        let ps = m.now_ps();
        // 100 MHz → 10_000 ps per cycle.
        assert_eq!(ps, m.now_cycles() as u128 * 10_000);
    }

    #[test]
    fn packet_roundtrip_play() {
        let mut m = sanity_machine(2);
        m.start_run();
        m.deliver_packet(m.now_cycles(), vec![42; 100]);
        // Let the DMA and SC processing finish.
        m.idle(20_000);
        let got = m.poll_packet(123).expect("packet visible");
        assert_eq!(got.0, vec![42; 100]);
        assert_eq!(got.1, 123);
    }

    #[test]
    fn packet_not_visible_before_sc_latency() {
        let mut m = sanity_machine(3);
        m.start_run();
        let now = m.now_cycles();
        m.deliver_packet(now + 5_000, vec![1]);
        assert!(m.poll_packet(1).is_none(), "not yet DMA'd");
    }

    #[test]
    fn replay_injects_logged_packets_at_icount() {
        let mut m = sanity_machine(4);
        m.start_run();
        m.enter_replay(
            vec![StEntry {
                ts: 50,
                data: vec![7; 10],
                avail_at: 0,
                wire_at: 0,
            }],
            vec![],
        );
        assert!(m.poll_packet(49).is_none());
        let (d, ts) = m.poll_packet(50).expect("injected at icount 50");
        assert_eq!(d, vec![7; 10]);
        assert_eq!(ts, 50);
    }

    #[test]
    fn event_values_recorded_then_injected() {
        let mut m = sanity_machine(5);
        m.start_run();
        assert_eq!(m.event_value(111), 111);
        assert_eq!(m.event_value(222), 222);
        let logged = m.drain_logged_values();
        assert_eq!(logged, vec![111, 222]);

        let mut r = sanity_machine(6);
        r.start_run();
        r.enter_replay(vec![], logged);
        assert_eq!(r.event_value(999), 111, "replay returns the logged value");
        assert_eq!(r.event_value(888), 222);
    }

    #[test]
    fn send_packet_records_tx_with_wall_time() {
        let mut m = sanity_machine(7);
        m.start_run();
        m.send_packet(&[1, 2, 3]);
        m.step_instr(10, 0x1_0000, &[], None);
        m.send_packet(&[4, 5, 6]);
        let tx = m.take_tx();
        assert_eq!(tx.len(), 2);
        assert!(tx[1].cycle > tx[0].cycle);
        assert!(tx[1].wall_ps > tx[0].wall_ps);
        assert_eq!(tx[0].data, vec![1, 2, 3]);
    }

    #[test]
    fn storage_read_blocks_tc() {
        let mut m = sanity_machine(8);
        m.start_run();
        let c0 = m.now_cycles();
        let lat = m.storage_read(0, 4096);
        assert!(lat > 0);
        assert!(m.now_cycles() >= c0 + lat);
    }

    #[test]
    fn io_padding_makes_storage_deterministic() {
        let run = |seed: u64| {
            let mut m = Machine::new(MachineConfig::sanity(), Seeds::from_run(seed));
            m.start_run();
            (0..10).map(|k| m.storage_read(k * 997, 2048)).sum::<u64>()
        };
        assert_eq!(run(1), run(2), "padded I/O ignores the storage seed");
    }

    #[test]
    fn no_split_interrupts_the_tc() {
        let mut cfg = MachineConfig::sanity();
        cfg.tc_sc_split = false;
        let mut with_irq = Machine::new(cfg, Seeds::from_run(9));
        with_irq.start_run();
        let mut without = sanity_machine(9);
        without.start_run();

        for m in [&mut with_irq, &mut without] {
            let now = m.now_cycles();
            for k in 0..10 {
                m.deliver_packet(now + k * 100, vec![0; 256]);
            }
        }
        // Execute identical work on both.
        let work = |m: &mut Machine| {
            let c0 = m.now_cycles();
            for _ in 0..1000 {
                m.step_instr(10, 0x1_0000, &[(map::HEAP, false)], None);
            }
            m.now_cycles() - c0
        };
        let t_irq = work(&mut with_irq);
        let t_split = work(&mut without);
        assert!(
            t_irq > t_split,
            "TC-handled interrupts must slow the TC: {t_irq} vs {t_split}"
        );
    }

    #[test]
    fn log_housekeeping_produces_dma() {
        let mut m = sanity_machine(10);
        m.start_run();
        for k in 0..50 {
            m.event_value(k);
            m.idle(100_000);
        }
        assert!(m.log_dma_bytes() > 0, "SC flushed the log");
    }

    #[test]
    fn event_ticking_is_bit_identical_to_scanning() {
        // The tick queue must never change simulated time — only skip
        // no-op housekeeping scans. Run an eventful mix (instructions,
        // idles, packets, event values) in a noisy environment under both
        // modes and require identical clocks, wall time, and event counts.
        let run = |event_ticking: bool, env: Environment| {
            let mut cfg = MachineConfig::sanity();
            cfg.env = env;
            cfg.tc_sc_split = false; // Exercise the TC-IRQ component too.
            cfg.event_ticking = event_ticking;
            let mut m = Machine::new(cfg, Seeds::from_run(42));
            m.start_run();
            let base = m.now_cycles();
            for k in 0..40u64 {
                m.deliver_packet(base + k * 90_000, vec![k as u8; 128]);
            }
            for k in 0..8_000u64 {
                m.step_instr(
                    10,
                    0x1_0000 + (k % 64) * 4,
                    &[(map::HEAP + k * 8, k % 3 == 0)],
                    None,
                );
                if k % 500 == 0 {
                    m.event_value(k);
                }
                if k % 200 == 0 {
                    m.poll_packet(k);
                }
                if k % 700 == 0 {
                    m.idle(30_000);
                }
            }
            let (p, i, d) = m.noise.stats();
            (m.now_cycles(), m.now_ps(), m.log_dma_bytes(), p, i, d)
        };
        for env in [Environment::Sanity, Environment::UserNoisy] {
            assert_eq!(
                run(true, env),
                run(false, env),
                "tick modes diverged under {env:?}"
            );
        }
    }

    #[test]
    fn seeds_spread_is_stable_and_distinct() {
        let a = Seeds::from_run(1);
        let b = Seeds::from_run(1);
        let c = Seeds::from_run(2);
        assert_eq!(a, b);
        assert_ne!(a.noise, c.noise);
        assert_ne!(a.noise, a.bus);
    }
}
