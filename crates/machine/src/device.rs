//! Devices: the NIC and the storage device.
//!
//! Devices are operated by the supporting core; their effect on the timed
//! core is indirect (DMA bus occupancy, entries appearing in the S-T
//! buffer). The storage model implements the paper's §3.7 choices: HDDs have
//! large, position-dependent latencies (seek + rotation), SSDs are roughly
//! three orders of magnitude faster and far more predictable, and a RAM disk
//! (what the paper actually uses for logs and NFS files) is nearly constant
//! time. Padding to the worst case makes any of them deterministic at the
//! cost of throughput.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sim_core::Cycles;

/// A transmitted packet, as observed on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxRecord {
    /// TC cycle at which the packet left the machine.
    pub cycle: Cycles,
    /// Wall-clock picoseconds at which the packet left the machine.
    pub wall_ps: u128,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// The network interface: SC-side processing latencies.
#[derive(Debug, Clone)]
pub struct Nic {
    /// SC cycles to process one received packet into the S-T buffer.
    pub sc_rx_cycles: Cycles,
    /// SC cycles to forward one packet from the T-S buffer to the wire.
    pub sc_tx_cycles: Cycles,
    rx_packets: u64,
    rx_bytes: u64,
    tx_packets: u64,
    tx_bytes: u64,
}

impl Nic {
    /// A 1 Gbps-class NIC with small fixed SC processing costs.
    pub fn new() -> Self {
        Nic {
            sc_rx_cycles: 1_200,
            sc_tx_cycles: 900,
            rx_packets: 0,
            rx_bytes: 0,
            tx_packets: 0,
            tx_bytes: 0,
        }
    }

    /// Note a received packet (statistics only).
    pub fn note_rx(&mut self, bytes: usize) {
        self.rx_packets += 1;
        self.rx_bytes += bytes as u64;
    }

    /// Note a transmitted packet (statistics only).
    pub fn note_tx(&mut self, bytes: usize) {
        self.tx_packets += 1;
        self.tx_bytes += bytes as u64;
    }

    /// `(rx_packets, rx_bytes, tx_packets, tx_bytes)`.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.rx_packets,
            self.rx_bytes,
            self.tx_packets,
            self.tx_bytes,
        )
    }
}

impl Default for Nic {
    fn default() -> Self {
        Nic::new()
    }
}

/// The kind of storage backing file reads and the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageKind {
    /// Rotational disk: seek + rotational latency, milliseconds-scale.
    Hdd,
    /// Flash: tens of microseconds, small variance.
    Ssd,
    /// RAM disk: near-constant, what the paper uses for logs and NFS files.
    RamDisk,
}

/// The storage device model.
///
/// `read_latency` returns the device-side latency in TC cycles (at the
/// simulated 100 MHz-class clock; 1 ms ≈ 100k cycles). With `pad` set,
/// every request is padded to the kind's worst case, removing the variance
/// at the cost of latency (§3.7).
#[derive(Debug)]
pub struct Storage {
    kind: StorageKind,
    pad: bool,
    rng: StdRng,
    head_pos: u64,
    reads: u64,
    read_bytes: u64,
}

impl Storage {
    /// Create a device; `seed` drives the mechanical/flash variance.
    pub fn new(kind: StorageKind, pad: bool, seed: u64) -> Self {
        Storage {
            kind,
            pad,
            rng: StdRng::seed_from_u64(seed),
            head_pos: 0,
            reads: 0,
            read_bytes: 0,
        }
    }

    /// The configured kind.
    pub fn kind(&self) -> StorageKind {
        self.kind
    }

    /// Whether worst-case padding is enabled.
    pub fn padded(&self) -> bool {
        self.pad
    }

    /// Worst-case latency for `bytes` on this device, in cycles.
    pub fn worst_case(&self, bytes: u64) -> Cycles {
        match self.kind {
            // Full-stroke seek (8 ms) + full rotation (8 ms) + transfer.
            StorageKind::Hdd => 1_600_000 + bytes / 2,
            // Max flash latency (a slow page read).
            StorageKind::Ssd => 11_000 + bytes / 16,
            StorageKind::RamDisk => 300 + bytes / 64,
        }
    }

    /// Latency of reading `bytes` at logical block address `lba`.
    pub fn read_latency(&mut self, lba: u64, bytes: u64) -> Cycles {
        self.reads += 1;
        self.read_bytes += bytes;
        if self.pad {
            return self.worst_case(bytes);
        }
        match self.kind {
            StorageKind::Hdd => {
                // Seek proportional to head travel, capped at full stroke.
                let travel = self.head_pos.abs_diff(lba);
                let seek = 100_000 + (travel / 64).min(700_000);
                self.head_pos = lba;
                // Rotational latency: uniform over one revolution (8 ms).
                let rot = self.rng.gen_range(0..800_000);
                seek + rot + bytes / 2
            }
            StorageKind::Ssd => {
                // Flash latency varies with page state and internal GC.
                let base = 2_000 + bytes / 16;
                base + self.rng.gen_range(0..9_000)
            }
            StorageKind::RamDisk => {
                let base = 250 + bytes / 64;
                base + self.rng.gen_range(0..50)
            }
        }
    }

    /// `(reads, bytes)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.reads, self.read_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_is_orders_of_magnitude_slower_than_ssd() {
        let mut hdd = Storage::new(StorageKind::Hdd, false, 1);
        let mut ssd = Storage::new(StorageKind::Ssd, false, 1);
        let h: Cycles = (0..20).map(|k| hdd.read_latency(k * 100_000, 4096)).sum();
        let s: Cycles = (0..20).map(|k| ssd.read_latency(k * 100_000, 4096)).sum();
        assert!(
            h > s * 50,
            "HDD ({h}) should be orders of magnitude above SSD ({s})"
        );
    }

    #[test]
    fn padding_makes_latency_constant() {
        let mut padded = Storage::new(StorageKind::Ssd, true, 9);
        let a = padded.read_latency(0, 4096);
        let b = padded.read_latency(999_999, 4096);
        let c = padded.read_latency(12, 4096);
        assert!(a == b && b == c, "padded latency is request-independent");

        let mut raw = Storage::new(StorageKind::Ssd, false, 9);
        let xs: Vec<Cycles> = (0..10).map(|k| raw.read_latency(k * 7777, 4096)).collect();
        assert!(
            xs.windows(2).any(|w| w[0] != w[1]),
            "unpadded latency varies"
        );
    }

    #[test]
    fn padded_is_upper_bound() {
        let mut raw = Storage::new(StorageKind::Hdd, false, 3);
        let wc = raw.worst_case(4096);
        for k in 0..50 {
            assert!(raw.read_latency(k * 31_337, 4096) <= wc);
        }
    }

    #[test]
    fn hdd_seek_depends_on_distance() {
        let mut hdd = Storage::new(StorageKind::Hdd, false, 4);
        hdd.read_latency(0, 64); // Park at 0.
                                 // Average over many rotations to expose the seek component.
        let near: Cycles = (0..50).map(|_| hdd.read_latency(0, 64)).sum();
        let mut hdd2 = Storage::new(StorageKind::Hdd, false, 4);
        hdd2.read_latency(0, 64);
        let far: Cycles = (0..50)
            .map(|k| hdd2.read_latency((k % 2) * 200_000_000, 64))
            .sum();
        assert!(far > near, "long seeks cost more on average");
    }

    #[test]
    fn ramdisk_is_fast_and_stable() {
        let mut rd = Storage::new(StorageKind::RamDisk, false, 5);
        let xs: Vec<Cycles> = (0..20).map(|k| rd.read_latency(k, 4096)).collect();
        let min = *xs.iter().min().expect("non-empty");
        let max = *xs.iter().max().expect("non-empty");
        assert!(max < 1_000, "RAM disk stays sub-10µs: {max}");
        assert!(max - min <= 50, "variance is tiny");
    }

    #[test]
    fn nic_counters() {
        let mut nic = Nic::new();
        nic.note_rx(100);
        nic.note_tx(200);
        nic.note_tx(50);
        assert_eq!(nic.stats(), (1, 100, 2, 250));
    }

    #[test]
    fn storage_variance_is_seeded() {
        let mut a = Storage::new(StorageKind::Hdd, false, 77);
        let mut b = Storage::new(StorageKind::Hdd, false, 77);
        for k in 0..10 {
            assert_eq!(a.read_latency(k * 1000, 512), b.read_latency(k * 1000, 512));
        }
    }
}
