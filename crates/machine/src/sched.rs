//! Discrete-event tick scheduling for the machine's housekeeping work.
//!
//! `Machine::post_step` runs after every instruction, idle period, and
//! buffer operation. In the original scan-everything design it re-checked
//! all four housekeeping components (noise injector, TC device IRQs, SC
//! heartbeat, SC log flush) each time, even though each component is
//! dormant for hundreds of thousands of cycles between events. The
//! [`TickQueue`] replaces the scan with a min-heap of `(due_cycle,
//! component)` keys: `post_step` peeks the heap top and skips the whole
//! housekeeping block unless something is actually due, so idle components
//! cost zero host work.
//!
//! **Invariant: heap order never affects simulated time.** The queue only
//! decides *whether* the housekeeping block runs at a given call; when it
//! runs, the block executes the components in the same canonical order as
//! the scan-everything design and every component re-checks its own due
//! condition against the cycle clock. Entries are conservative (lazy
//! deletion): a stale entry triggers a scan that finds nothing due — the
//! exact behavior of the original design at that cycle — and never an
//! early or re-ordered event. What must hold is the converse: the heap
//! always holds a key at or before every component's true next due cycle,
//! which `Machine` maintains by re-arming after each block run and pushing
//! at every mutation that can move a due time earlier.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sim_core::Cycles;

/// The housekeeping components `post_step` multiplexes.
///
/// The discriminant order is part of the heap key and therefore must never
/// affect behavior — see the module invariant. It exists only so two
/// components due at the same cycle compare deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ComponentId {
    /// Environment noise (timer IRQs, preemptions, background DMA).
    Noise,
    /// Device-IRQ delivery to the TC (no-TC/SC-split configurations).
    TcIrq,
    /// SC heartbeat bus interference (§6.9 residual).
    Heartbeat,
    /// SC log-flush housekeeping DMA.
    LogFlush,
}

/// Min-heap of `(due_cycle, component)` with lazy deletion.
#[derive(Debug, Default)]
pub struct TickQueue {
    heap: BinaryHeap<Reverse<(Cycles, ComponentId)>>,
}

impl TickQueue {
    /// An empty queue.
    pub fn new() -> Self {
        TickQueue {
            heap: BinaryHeap::with_capacity(8),
        }
    }

    /// Arm `component` at absolute cycle `due`. Duplicates are fine (lazy
    /// deletion); an entry earlier than the true due time only costs a
    /// no-op scan.
    #[inline]
    pub fn push(&mut self, due: Cycles, component: ComponentId) {
        self.heap.push(Reverse((due, component)));
    }

    /// True if any entry is due at or before `now`.
    #[inline]
    pub fn any_due(&self, now: Cycles) -> bool {
        matches!(self.heap.peek(), Some(&Reverse((t, _))) if t <= now)
    }

    /// Drop every entry due at or before `now` (called right before the
    /// housekeeping block runs; the block re-arms what remains active).
    #[inline]
    pub fn drain_due(&mut self, now: Cycles) {
        while matches!(self.heap.peek(), Some(&Reverse((t, _))) if t <= now) {
            self.heap.pop();
        }
    }

    /// Number of pending entries (stale ones included).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_ordering_is_by_cycle() {
        let mut q = TickQueue::new();
        q.push(500, ComponentId::LogFlush);
        q.push(100, ComponentId::Heartbeat);
        assert!(!q.any_due(99));
        assert!(q.any_due(100));
        q.drain_due(100);
        assert!(!q.any_due(499), "later entry not yet due");
        assert!(q.any_due(500));
    }

    #[test]
    fn drain_removes_all_due_entries() {
        let mut q = TickQueue::new();
        for t in [10, 20, 30, 40] {
            q.push(t, ComponentId::Noise);
        }
        q.drain_due(25);
        assert_eq!(q.len(), 2);
        assert!(q.any_due(30));
    }

    #[test]
    fn duplicates_are_harmless() {
        let mut q = TickQueue::new();
        q.push(100, ComponentId::TcIrq);
        q.push(100, ComponentId::TcIrq);
        q.drain_due(100);
        assert!(q.is_empty());
    }
}
