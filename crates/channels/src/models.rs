//! Distribution fitting for the model-based channel (MBCTC).
//!
//! The paper's MBCTC "periodically fits samples of a legitimate traffic to
//! several models and picks the best fit" (§5.1, citing Gianvecchio et al.).
//! This module implements the model family — exponential, lognormal, and
//! Weibull — with closed-form or moment-based fits, CDFs, and inverse CDFs,
//! and selects the best fit by Kolmogorov-Smirnov distance.

use serde::{Deserialize, Serialize};

/// The model family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FitModel {
    /// Exponential(λ).
    Exponential {
        /// Rate parameter.
        lambda: f64,
    },
    /// Lognormal(μ, σ).
    LogNormal {
        /// Mean of ln X.
        mu: f64,
        /// Std dev of ln X.
        sigma: f64,
    },
    /// Weibull(k, λ) via moment matching.
    Weibull {
        /// Shape.
        k: f64,
        /// Scale.
        lambda: f64,
    },
}

/// A fitted model with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedModel {
    /// The model and parameters.
    pub model: FitModel,
    /// KS distance to the training sample (lower is better).
    pub ks: f64,
}

impl FittedModel {
    /// CDF of the fitted model.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        match self.model {
            FitModel::Exponential { lambda } => 1.0 - (-lambda * x).exp(),
            FitModel::LogNormal { mu, sigma } => {
                0.5 * (1.0 + erf((x.ln() - mu) / (sigma * std::f64::consts::SQRT_2)))
            }
            FitModel::Weibull { k, lambda } => 1.0 - (-(x / lambda).powf(k)).exp(),
        }
    }

    /// Inverse CDF (quantile function).
    pub fn inv_cdf(&self, q: f64) -> f64 {
        let q = q.clamp(1e-9, 1.0 - 1e-9);
        match self.model {
            FitModel::Exponential { lambda } => -(1.0 - q).ln() / lambda,
            FitModel::LogNormal { mu, sigma } => {
                (mu + sigma * netsim::stats::normal_quantile(q)).exp()
            }
            FitModel::Weibull { k, lambda } => lambda * (-(1.0 - q).ln()).powf(1.0 / k),
        }
    }
}

/// Error function (Abramowitz & Stegun 7.1.26, |err| ≤ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

fn fit_exponential(xs: &[f64]) -> FitModel {
    let mean = netsim::stats::mean(xs).max(1e-12);
    FitModel::Exponential { lambda: 1.0 / mean }
}

fn fit_lognormal(xs: &[f64]) -> FitModel {
    let logs: Vec<f64> = xs.iter().map(|&x| x.max(1e-12).ln()).collect();
    FitModel::LogNormal {
        mu: netsim::stats::mean(&logs),
        sigma: netsim::stats::std_dev(&logs).max(1e-6),
    }
}

fn fit_weibull(xs: &[f64]) -> FitModel {
    // Moment matching on the coefficient of variation: solve
    // CV² = Γ(1+2/k)/Γ(1+1/k)² − 1 by bisection on k.
    let mean = netsim::stats::mean(xs).max(1e-12);
    let cv = netsim::stats::std_dev(xs) / mean;
    let cv2 = (cv * cv).clamp(1e-6, 100.0);
    let f = |k: f64| {
        let g1 = ln_gamma(1.0 + 1.0 / k);
        let g2 = ln_gamma(1.0 + 2.0 / k);
        (g2 - 2.0 * g1).exp() - 1.0 - cv2
    };
    let (mut lo, mut hi) = (0.1, 20.0);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let k = 0.5 * (lo + hi);
    let lambda = mean / (ln_gamma(1.0 + 1.0 / k)).exp();
    FitModel::Weibull { k, lambda }
}

/// Lanczos approximation of ln Γ(x) for x > 0.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection.
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Fit all models to `sample` and return the one with the smallest KS
/// distance.
pub fn fit_best(sample: &[u64]) -> FittedModel {
    assert!(!sample.is_empty(), "cannot fit an empty sample");
    let xs: Vec<f64> = sample.iter().map(|&x| x as f64).collect();
    let candidates = [fit_exponential(&xs), fit_lognormal(&xs), fit_weibull(&xs)];
    let mut sorted = xs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len() as f64;
    let mut best: Option<FittedModel> = None;
    for model in candidates {
        let fm = FittedModel { model, ks: 0.0 };
        // KS against the empirical CDF.
        let mut d: f64 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            let e_hi = (i + 1) as f64 / n;
            let e_lo = i as f64 / n;
            let c = fm.cdf(x);
            d = d.max((c - e_hi).abs()).max((c - e_lo).abs());
        }
        let fm = FittedModel { model, ks: d };
        if best.map(|b| fm.ks < b.ks).unwrap_or(true) {
            best = Some(fm);
        }
    }
    best.expect("at least one candidate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn lognormal_sample(mu: f64, sigma: f64, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-9..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma * z).exp() as u64
            })
            .collect()
    }

    #[test]
    fn lognormal_data_prefers_lognormal() {
        let sample = lognormal_sample(13.0, 0.4, 2000, 1);
        let fit = fit_best(&sample);
        assert!(
            matches!(fit.model, FitModel::LogNormal { .. }),
            "got {fit:?}"
        );
        assert!(fit.ks < 0.05, "good fit: ks={}", fit.ks);
    }

    #[test]
    fn exponential_data_prefers_exponential_family() {
        let mut rng = StdRng::seed_from_u64(2);
        let sample: Vec<u64> = (0..2000)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-9..1.0);
                (-u.ln() * 1e6) as u64
            })
            .collect();
        let fit = fit_best(&sample);
        // Exponential is Weibull with k=1; accept either representation.
        let ok = match fit.model {
            FitModel::Exponential { .. } => true,
            FitModel::Weibull { k, .. } => (k - 1.0).abs() < 0.15,
            _ => false,
        };
        assert!(ok, "got {fit:?}");
        assert!(fit.ks < 0.05);
    }

    #[test]
    fn cdf_inv_cdf_roundtrip() {
        let sample = lognormal_sample(12.0, 0.5, 500, 3);
        let fit = fit_best(&sample);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let x = fit.inv_cdf(q);
            assert!((fit.cdf(x) - q).abs() < 1e-3, "q={q}");
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let sample = lognormal_sample(12.0, 0.5, 500, 4);
        let fit = fit_best(&sample);
        let mut prev = 0.0;
        for k in 1..100 {
            let c = fit.cdf(k as f64 * 10_000.0);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-6);
    }
}
