//! `channels` — covert timing channels (§5.1).
//!
//! Implements the four channels of the paper's evaluation:
//!
//! * [`Ipctc`] — the classic IP covert timing channel: fixed intervals,
//!   packet-in-interval = 1, silence = 0. Blatant traffic signature.
//! * [`Trctc`] — traffic-replay: IPDs are *replayed* from bins of legitimate
//!   traffic (B0 = small, B1 = large), defeating first-order shape tests but
//!   exhibiting a constant encoding scheme.
//! * [`Mbctc`] — model-based: legitimate traffic is periodically fitted to a
//!   family of distributions and covert IPDs are drawn from the best fit by
//!   inverse-CDF sampling, with the bit selecting the lower/upper half of
//!   the distribution. The marginal *shape* matches legitimate traffic; the
//!   lack of correlation between consecutive IPDs does not.
//! * [`Needle`] — the paper's short-lived channel (§6.8): one bit every
//!   `k`-th packet (default 100), leaving high-level statistics essentially
//!   unchanged.
//!
//! All channels implement [`TimingChannel`]: `encode` maps message bits +
//! legitimate IPDs to covert IPDs, `decode` inverts it at the receiver.
//! Units are "ticks" — the experiments use TC cycles (10 ns at the simulated
//! 100 MHz).
//!
//! [`delays_from_ipds`] converts a covert IPD schedule into the per-send
//! delays consumed by the VM's `covert_delay` primitive (§6.6).

pub mod models;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use models::{FitModel, FittedModel};

/// A covert timing channel: encode bits into IPDs, decode IPDs into bits.
pub trait TimingChannel {
    /// Short display name (matches the paper's figures).
    fn name(&self) -> &'static str;

    /// Produce a covert IPD sequence carrying `bits`, shaped with reference
    /// to `legit_ipds` (a sample of legitimate traffic).
    fn encode(&mut self, bits: &[bool], legit_ipds: &[u64]) -> Vec<u64>;

    /// Recover bits from an observed IPD sequence (given the same training
    /// sample the sender used).
    fn decode(&self, ipds: &[u64], legit_ipds: &[u64]) -> Vec<bool>;
}

/// Convert a target IPD sequence into per-send *extra delays* relative to a
/// base schedule.
///
/// A sender can only delay packets, never move them earlier, so the raw
/// difference `covert_send[i] − base_send[i]` may be negative. All sends are
/// therefore shifted by a common offset that makes every delay
/// non-negative; a constant shift of the whole schedule leaves the IPDs —
/// the covert carrier — untouched. The result feeds `vm::ScheduledDelays`.
pub fn delays_from_ipds(base_ipds: &[u64], covert_ipds: &[u64]) -> Vec<u64> {
    let n = base_ipds.len().min(covert_ipds.len());
    let mut diffs = Vec::with_capacity(n + 1);
    diffs.push(0i128); // First packet's raw shift.
    let mut base_t = 0i128;
    let mut cov_t = 0i128;
    for k in 0..n {
        base_t += base_ipds[k] as i128;
        cov_t += covert_ipds[k] as i128;
        diffs.push(cov_t - base_t);
    }
    let min = diffs.iter().copied().min().unwrap_or(0);
    let offset = (-min).max(0);
    diffs.iter().map(|&d| (d + offset) as u64).collect()
}

/// Bit-error rate between sent and received bit strings.
pub fn bit_error_rate(sent: &[bool], received: &[bool]) -> f64 {
    if sent.is_empty() {
        return 0.0;
    }
    let n = sent.len().min(received.len());
    let wrong = sent[..n]
        .iter()
        .zip(&received[..n])
        .filter(|(a, b)| a != b)
        .count()
        + sent.len().saturating_sub(n);
    wrong as f64 / sent.len() as f64
}

/// Deterministic test-message generator (alternating-ish bit pattern).
pub fn message_bits(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_bool(0.5)).collect()
}

// ---------------------------------------------------------------------------
// IPCTC
// ---------------------------------------------------------------------------

/// IP covert timing channel: one fixed interval per bit; a packet sent
/// within the interval encodes 1, silence encodes 0.
#[derive(Debug, Clone)]
pub struct Ipctc {
    /// The fixed bit interval, ticks.
    pub interval: u64,
}

impl Ipctc {
    /// Channel with the given bit interval.
    pub fn new(interval: u64) -> Self {
        Ipctc { interval }
    }
}

impl TimingChannel for Ipctc {
    fn name(&self) -> &'static str {
        "IPCTC"
    }

    fn encode(&mut self, bits: &[bool], _legit: &[u64]) -> Vec<u64> {
        // A packet is emitted for every 1; zeros extend the gap. The IPD
        // sequence therefore consists of multiples of the interval.
        let mut ipds = Vec::new();
        let mut gap = 0u64;
        for &b in bits {
            gap += self.interval;
            if b {
                ipds.push(gap);
                gap = 0;
            }
        }
        if gap > 0 {
            ipds.push(gap); // Trailing flush packet.
        }
        ipds
    }

    fn decode(&self, ipds: &[u64], _legit: &[u64]) -> Vec<bool> {
        let mut bits = Vec::new();
        for &d in ipds {
            let slots = ((d as f64 / self.interval as f64).round() as u64).max(1);
            bits.extend(std::iter::repeat_n(false, slots as usize - 1));
            bits.push(true);
        }
        bits
    }
}

// ---------------------------------------------------------------------------
// TRCTC
// ---------------------------------------------------------------------------

/// Traffic-replay covert timing channel: legitimate IPDs are partitioned at
/// the median into B0 (small) and B1 (large); bit `b` replays an IPD from
/// `Bb`.
#[derive(Debug, Clone)]
pub struct Trctc {
    rng: StdRng,
}

impl Trctc {
    /// Channel with a seeded replay-selection stream.
    pub fn new(seed: u64) -> Self {
        Trctc {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn bins(legit: &[u64]) -> (Vec<u64>, Vec<u64>, u64) {
        let mut sorted = legit.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let b0: Vec<u64> = legit.iter().copied().filter(|&x| x <= median).collect();
        let b1: Vec<u64> = legit.iter().copied().filter(|&x| x > median).collect();
        (b0, b1, median)
    }
}

impl TimingChannel for Trctc {
    fn name(&self) -> &'static str {
        "TRCTC"
    }

    fn encode(&mut self, bits: &[bool], legit: &[u64]) -> Vec<u64> {
        assert!(!legit.is_empty(), "TRCTC needs a legitimate sample");
        let (b0, b1, _) = Self::bins(legit);
        bits.iter()
            .map(|&b| {
                let bin = if b { &b1 } else { &b0 };
                if bin.is_empty() {
                    legit[0]
                } else {
                    bin[self.rng.gen_range(0..bin.len())]
                }
            })
            .collect()
    }

    fn decode(&self, ipds: &[u64], legit: &[u64]) -> Vec<bool> {
        let (_, _, median) = Self::bins(legit);
        ipds.iter().map(|&d| d > median).collect()
    }
}

// ---------------------------------------------------------------------------
// MBCTC
// ---------------------------------------------------------------------------

/// Model-based covert timing channel: fit the legitimate IPD distribution,
/// then inverse-CDF-sample with the bit choosing the half-quantile range.
/// The model is refitted every `refit_every` packets (the paper's periodic
/// refit).
#[derive(Debug, Clone)]
pub struct Mbctc {
    /// Packets between refits.
    pub refit_every: usize,
    rng: StdRng,
}

impl Mbctc {
    /// Channel with the given refit period.
    pub fn new(refit_every: usize, seed: u64) -> Self {
        Mbctc {
            refit_every: refit_every.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TimingChannel for Mbctc {
    fn name(&self) -> &'static str {
        "MBCTC"
    }

    fn encode(&mut self, bits: &[bool], legit: &[u64]) -> Vec<u64> {
        assert!(!legit.is_empty(), "MBCTC needs a legitimate sample");
        let mut out = Vec::with_capacity(bits.len());
        let mut model = models::fit_best(legit);
        for (k, &b) in bits.iter().enumerate() {
            if k > 0 && k % self.refit_every == 0 {
                // Refit on a sliding window of the legitimate sample, as the
                // paper's channel periodically re-models live traffic.
                let start = k % legit.len();
                let window: Vec<u64> = legit
                    .iter()
                    .cycle()
                    .skip(start)
                    .take(legit.len().min(256))
                    .copied()
                    .collect();
                model = models::fit_best(&window);
            }
            let u = if b {
                self.rng.gen_range(0.5..1.0)
            } else {
                self.rng.gen_range(0.0..0.5)
            };
            out.push(model.inv_cdf(u).max(1.0) as u64);
        }
        out
    }

    fn decode(&self, ipds: &[u64], legit: &[u64]) -> Vec<bool> {
        let model = models::fit_best(legit);
        ipds.iter().map(|&d| model.cdf(d as f64) >= 0.5).collect()
    }
}

// ---------------------------------------------------------------------------
// Needle
// ---------------------------------------------------------------------------

/// The short-lived channel of §6.8: every `stride`-th packet carries one
/// bit; bit 1 stretches that packet's IPD by `delta_frac` of the median
/// legitimate IPD, bit 0 leaves it alone. All other packets keep their
/// legitimate timing.
#[derive(Debug, Clone)]
pub struct Needle {
    /// Packets per covert bit (the paper uses 100).
    pub stride: usize,
    /// IPD stretch for a 1-bit, as a fraction of the median legitimate IPD.
    pub delta_frac: f64,
}

impl Needle {
    /// One bit per `stride` packets, stretching by `delta_frac`.
    pub fn new(stride: usize, delta_frac: f64) -> Self {
        Needle {
            stride: stride.max(1),
            delta_frac,
        }
    }

    fn median(legit: &[u64]) -> u64 {
        let mut s = legit.to_vec();
        s.sort_unstable();
        s[s.len() / 2]
    }
}

impl TimingChannel for Needle {
    fn name(&self) -> &'static str {
        "Needle"
    }

    fn encode(&mut self, bits: &[bool], legit: &[u64]) -> Vec<u64> {
        assert!(!legit.is_empty(), "Needle needs a legitimate sample");
        let median = Self::median(legit);
        let delta = (median as f64 * self.delta_frac) as u64;
        // The carrier is the legitimate traffic itself, cycled to the needed
        // length: stride packets per bit.
        let total = bits.len() * self.stride;
        let mut out: Vec<u64> = legit.iter().cycle().take(total).copied().collect();
        for (bi, &b) in bits.iter().enumerate() {
            if b {
                let idx = bi * self.stride;
                out[idx] += delta;
            }
        }
        out
    }

    fn decode(&self, ipds: &[u64], legit: &[u64]) -> Vec<bool> {
        let median = Self::median(legit);
        let threshold = median + (median as f64 * self.delta_frac / 2.0) as u64;
        ipds.chunks(self.stride)
            .map(|chunk| chunk.first().map(|&d| d > threshold).unwrap_or(false))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn legit_sample(seed: u64, n: usize) -> Vec<u64> {
        // Bursty-ish legitimate traffic: lognormal around 700k ticks (7 ms).
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-9..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (700_000.0 * (0.35 * z).exp()) as u64
            })
            .collect()
    }

    #[test]
    fn ipctc_roundtrip_without_noise() {
        let bits = message_bits(64, 1);
        let mut ch = Ipctc::new(100_000);
        let ipds = ch.encode(&bits, &[]);
        let got = ch.decode(&ipds, &[]);
        // Trailing zeros may be absorbed by the flush packet; compare the
        // prefix up to the last 1.
        let last_one = bits.iter().rposition(|&b| b).unwrap_or(0);
        assert_eq!(&got[..=last_one], &bits[..=last_one]);
    }

    #[test]
    fn trctc_roundtrip_without_noise() {
        let legit = legit_sample(2, 500);
        let bits = message_bits(128, 3);
        let mut ch = Trctc::new(9);
        let ipds = ch.encode(&bits, &legit);
        let got = ch.decode(&ipds, &legit);
        let ber = bit_error_rate(&bits, &got);
        assert!(ber < 0.05, "noiseless TRCTC decodes cleanly: ber={ber}");
    }

    #[test]
    fn trctc_ipds_come_from_legit_sample() {
        let legit = legit_sample(4, 300);
        let mut ch = Trctc::new(10);
        let ipds = ch.encode(&message_bits(100, 5), &legit);
        for d in ipds {
            assert!(legit.contains(&d), "every covert IPD is replayed");
        }
    }

    #[test]
    fn mbctc_roundtrip_and_shape() {
        let legit = legit_sample(6, 800);
        let bits = message_bits(256, 7);
        let mut ch = Mbctc::new(64, 8);
        let ipds = ch.encode(&bits, &legit);
        let got = ch.decode(&ipds, &legit);
        let ber = bit_error_rate(&bits, &got);
        assert!(ber < 0.10, "noiseless MBCTC mostly decodes: ber={ber}");
        // Shape: the covert mean is within 25% of the legitimate mean.
        let lm = legit.iter().sum::<u64>() as f64 / legit.len() as f64;
        let cm = ipds.iter().sum::<u64>() as f64 / ipds.len() as f64;
        assert!((cm / lm - 1.0).abs() < 0.25, "marginal shape preserved");
    }

    #[test]
    fn needle_affects_only_strided_packets() {
        let legit = legit_sample(10, 400);
        let bits = vec![true, false, true];
        let mut ch = Needle::new(100, 0.5);
        let ipds = ch.encode(&bits, &legit);
        assert_eq!(ipds.len(), 300);
        // Non-strided packets keep the legitimate carrier values.
        let carrier: Vec<u64> = legit.iter().cycle().take(300).copied().collect();
        let mut diffs = 0;
        for (k, (a, b)) in ipds.iter().zip(carrier.iter()).enumerate() {
            if a != b {
                assert_eq!(k % 100, 0, "only bit positions change");
                diffs += 1;
            }
        }
        assert_eq!(diffs, 2, "two 1-bits shifted");
        let got = ch.decode(&ipds, &legit);
        assert_eq!(got, bits);
    }

    #[test]
    fn delays_from_ipds_preserves_covert_ipds() {
        let base = [100u64, 100, 100];
        let covert = [150u64, 50, 150];
        let d = delays_from_ipds(&base, &covert);
        // Realized send times: base cumulative + delay.
        let base_t = [0u64, 100, 200, 300];
        let sends: Vec<u64> = base_t.iter().zip(&d).map(|(b, x)| b + x).collect();
        let ipds: Vec<u64> = sends.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(ipds, covert, "IPDs survive the delay-only constraint");
        assert!(d.iter().all(|&x| x < u64::MAX / 2), "no negative wraps");
    }

    #[test]
    fn delays_handle_covert_faster_than_base() {
        // Covert schedule initially runs AHEAD of base; the common offset
        // makes it realizable.
        let base = [100u64, 100, 100];
        let covert = [40u64, 40, 40];
        let d = delays_from_ipds(&base, &covert);
        let base_t = [0u64, 100, 200, 300];
        let sends: Vec<u64> = base_t.iter().zip(&d).map(|(b, x)| b + x).collect();
        let ipds: Vec<u64> = sends.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(ipds, covert);
    }

    #[test]
    fn ber_counts_mismatches() {
        let a = [true, false, true, true];
        let b = [true, true, true, false];
        assert!((bit_error_rate(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(bit_error_rate(&a, &a), 0.0);
    }

    #[test]
    fn channels_survive_mild_jitter() {
        // Decoding robustness under small jitter — the property that makes
        // WAN use possible at all (§6.9 bounds how small delays can get).
        let legit = legit_sample(20, 600);
        let bits = message_bits(64, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let mut ch = Trctc::new(23);
        let mut ipds = ch.encode(&bits, &legit);
        for d in ipds.iter_mut() {
            // ±2% jitter — well below the bin separation.
            let f = rng.gen_range(0.98..1.02);
            *d = (*d as f64 * f) as u64;
        }
        let ber = bit_error_rate(&bits, &ch.decode(&ipds, &legit));
        assert!(ber < 0.10, "TRCTC robust to 2% jitter: {ber}");
    }
}
