//! Covert-channel hunt: the paper's flagship application (§5, Fig. 8).
//!
//! ```text
//! cargo run --release --example covert_channel_hunt
//! ```
//!
//! An NFS server is compromised with a traffic-replay covert channel
//! (TRCTC) that exfiltrates a secret by modulating response timing. A
//! [`DetectorBattery`] trained on clean traces of the same service is
//! attached to a warm [`sanity_tdr::AuditService`] served as a TCP
//! daemon (the `tdrd` deployment); the suspect traces travel to it as a
//! TDRB batch over the TDRC control plane, and every session is scored
//! with all five Fig. 8 detectors in one pass: the statistical tests see
//! traffic that looks legitimate, while the TDR detector — comparing
//! against what the timing *should* have been, reproduced by audit
//! replay — catches the channel outright.

use std::net::{TcpListener, TcpStream};

use channels::{bit_error_rate, message_bits, TimingChannel, Trctc};
use detectors::{Detector, DetectorBattery, RegularityTest};
use sanity_tdr::audit_pipeline::ingest;
use sanity_tdr::{compare, serve_tcp, AuditJob, BatteryMode, Client, Sanity};
use vm::TargetSendTimes;
use workloads::nfs;

fn main() {
    println!("Covert channel hunt");
    println!("===================\n");

    // The machine under audit: an NFS server with a set of files.
    let files = nfs::make_files(8, 2048, 8192, 99);
    let sched = nfs::client_schedule(&files, 200_000, 740_000, 7);
    let server = Sanity::new(nfs::server_program(sched.len() as i32)).with_files(files.clone());
    let deliver = {
        let packets = sched.packets.clone();
        move |vm: &mut vm::Vm| {
            for (at, pkt) in packets.clone() {
                vm.machine_mut().deliver_packet(at, pkt);
            }
        }
    };

    // -- Day -1: train the battery on clean traces of the same service ----
    // (other clients, other days: same binary, different schedules).
    let train: Vec<Vec<u64>> = (0..6u64)
        .map(|k| {
            let sched = nfs::client_schedule(&files, 200_000, 740_000, 100 + k);
            let rec = server
                .record(10 + k, move |vm| {
                    for (at, pkt) in sched.packets {
                        vm.machine_mut().deliver_packet(at, pkt);
                    }
                })
                .expect("record training trace");
            compare::tx_ipds_cycles(&rec.tx)
        })
        .collect();
    let mut battery = DetectorBattery::new();
    battery.rt = RegularityTest::new(5); // short traces → small windows
    battery.train(&train);
    println!(
        "battery trained on {} clean traces of the same service\n",
        train.len()
    );

    // -- Day 0: a clean trace, for reference ------------------------------
    let clean = server.record(1, deliver.clone()).expect("record");
    let clean_ipds = compare::tx_ipds_cycles(&clean.tx);
    println!(
        "clean trace: {} responses, median IPD {:.2} ms",
        clean.tx.len(),
        median(&clean_ipds) as f64 / 100_000.0
    );

    // -- The attack: TRCTC encodes a secret into response IPDs ------------
    let secret = message_bits(clean_ipds.len(), 0xC0FFEE);
    let mut channel = Trctc::new(13);
    let covert_ipds = channel.encode(&secret, &clean_ipds);
    let base_sends: Vec<u64> = clean.tx.iter().map(|t| t.cycle).collect();
    let targets = targets_for(&base_sends, &covert_ipds);
    let compromised = server
        .record(1, {
            let deliver = deliver.clone();
            move |vm| {
                deliver(vm);
                vm.set_delay_model(Box::new(TargetSendTimes::new(targets)));
            }
        })
        .expect("record");
    let observed = compare::tx_ipds_cycles(&compromised.tx);
    let received = channel.decode(&observed, &clean_ipds);
    println!(
        "attacker decodes the secret with BER {:.1}% — the channel works\n",
        bit_error_rate(&secret, &received) * 100.0
    );

    // -- The hunt: a warm audit daemon, all five detectors per session --
    // The service's audit replays reproduce each trace's reference timing
    // (what the TDR detector scores against); the statistical detectors
    // only read the observed wire timing. Both suspect traces travel as
    // one TDRB batch over a real localhost socket — in production this
    // daemon (`tdrd`) stays up and audits every day's traffic from many
    // log sources with the same warm caches and battery.
    let service = server
        .clone()
        .with_battery(battery)
        .audit_service()
        .workers(2)
        .battery(BatteryMode::Full)
        .build()
        .expect("valid service configuration");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let daemon = serve_tcp(service, listener).expect("daemon starts");
    let jobs = vec![
        AuditJob {
            session_id: 0,
            observed_ipds: clean_ipds.clone(),
            log: clean.log.clone(),
        },
        AuditJob {
            session_id: 1,
            observed_ipds: observed.clone(),
            log: compromised.log.clone(),
        },
    ];
    let mut client =
        Client::new(TcpStream::connect(daemon.local_addr()).expect("connect to daemon"));
    let outcome = client
        .submit_batch(0, ingest::encode_batch(&jobs))
        .expect("TDRC protocol stays clean");
    let summary = outcome
        .result
        .clone()
        .expect("batch audits over the wire")
        .summary;
    client.shutdown().expect("connection shutdown acked");
    let report = daemon.shutdown();
    assert_eq!(report.connection_errors, 0);
    report.service.shutdown();
    let (clean_verdict, covert_verdict) = (&outcome.verdicts[0], &outcome.verdicts[1]);

    println!("{:<12} {:>12} {:>14}", "detector", "clean", "compromised");
    for (name, clean_score) in &clean_verdict.detector_scores {
        println!(
            "{:<12} {:>12.4} {:>14.4}",
            name, clean_score, covert_verdict.detector_scores[name]
        );
    }

    println!(
        "\nTDR verdict: clean deviation {:.2}% (not flagged), compromised {:.1}% (FLAGGED)",
        clean_verdict.score * 100.0,
        covert_verdict.score * 100.0
    );
    assert!(!clean_verdict.flagged && covert_verdict.flagged);
    assert_eq!(summary.flagged, vec![1], "only the covert session");
    assert_eq!(
        covert_verdict.detector_scores["Sanity"].to_bits(),
        covert_verdict.score.to_bits(),
        "the verdict's battery TDR entry is its scalar score"
    );
    println!("\nthe channel replays legitimate-looking IPDs, so the traffic");
    println!("statistics barely move — but it cannot survive a comparison");
    println!("against what the timing *should* have been");
}

fn median(xs: &[u64]) -> u64 {
    let mut v = xs.to_vec();
    v.sort_unstable();
    v[v.len() / 2]
}

fn targets_for(base_sends: &[u64], covert_ipds: &[u64]) -> Vec<u64> {
    let mut cov_abs = vec![0u64];
    let mut t = 0u64;
    for &d in covert_ipds.iter().take(base_sends.len() - 1) {
        t += d;
        cov_abs.push(t);
    }
    let offset = base_sends
        .iter()
        .zip(&cov_abs)
        .map(|(&b, &c)| b.saturating_sub(c))
        .max()
        .unwrap_or(0)
        + 150_000;
    cov_abs.iter().map(|&c| c + offset).collect()
}
