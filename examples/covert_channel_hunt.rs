//! Covert-channel hunt: the paper's flagship application (§5, Fig. 8).
//!
//! ```text
//! cargo run --release --example covert_channel_hunt
//! ```
//!
//! An NFS server is compromised with a traffic-replay covert channel
//! (TRCTC) that exfiltrates a secret by modulating response timing. The
//! statistical shape test sees nothing unusual; the TDR auditor replays the
//! server's log against the known-good binary and catches the channel.

use channels::{bit_error_rate, message_bits, TimingChannel, Trctc};
use detectors::{Detector, ShapeTest};
use sanity_tdr::{compare, Sanity, TimingAuditor};
use vm::TargetSendTimes;
use workloads::nfs;

fn main() {
    println!("Covert channel hunt");
    println!("===================\n");

    // The machine under audit: an NFS server with a set of files.
    let files = nfs::make_files(8, 2048, 8192, 99);
    let sched = nfs::client_schedule(&files, 200_000, 740_000, 7);
    let server = Sanity::new(nfs::server_program(sched.len() as i32)).with_files(files);
    let deliver = {
        let packets = sched.packets.clone();
        move |vm: &mut vm::Vm| {
            for (at, pkt) in packets.clone() {
                vm.machine_mut().deliver_packet(at, pkt);
            }
        }
    };

    // -- Day 0: a clean trace, for reference ------------------------------
    let clean = server.record(1, deliver.clone()).expect("record");
    let clean_ipds = compare::tx_ipds_cycles(&clean.tx);
    println!(
        "clean trace: {} responses, median IPD {:.2} ms",
        clean.tx.len(),
        median(&clean_ipds) as f64 / 100_000.0
    );

    // -- The attack: TRCTC encodes a secret into response IPDs ------------
    let secret = message_bits(clean_ipds.len(), 0xC0FFEE);
    let mut channel = Trctc::new(13);
    let covert_ipds = channel.encode(&secret, &clean_ipds);
    let base_sends: Vec<u64> = clean.tx.iter().map(|t| t.cycle).collect();
    let targets = targets_for(&base_sends, &covert_ipds);
    let compromised = server
        .record(1, {
            let deliver = deliver.clone();
            move |vm| {
                deliver(vm);
                vm.set_delay_model(Box::new(TargetSendTimes::new(targets)));
            }
        })
        .expect("record");
    let observed = compare::tx_ipds_cycles(&compromised.tx);
    let received = channel.decode(&observed, &clean_ipds);
    println!(
        "attacker decodes the secret with BER {:.1}% — the channel works",
        bit_error_rate(&secret, &received) * 100.0
    );

    // -- Defense 1: the statistical shape test ----------------------------
    let training: Vec<Vec<u64>> = vec![clean_ipds.clone()];
    let mut shape = ShapeTest::new();
    shape.train(&training);
    println!(
        "\nshape test:  clean score {:.2}, compromised score {:.2} — no separation",
        shape.score(&clean_ipds),
        shape.score(&observed)
    );

    // -- Defense 2: the TDR auditor ---------------------------------------
    let auditor = TimingAuditor::new(server.clone());
    let clean_report = auditor.audit(&clean.log, &clean_ipds, 50).expect("audit");
    let covert_report = auditor
        .audit(&compromised.log, &observed, 51)
        .expect("audit");
    println!(
        "TDR auditor: clean deviation {:.2}% (not flagged), compromised {:.1}% (FLAGGED)",
        clean_report.score * 100.0,
        covert_report.score * 100.0
    );
    assert!(!clean_report.flagged && covert_report.flagged);
    println!("\nthe channel is invisible to traffic statistics but cannot");
    println!("survive a comparison against what the timing *should* have been");
}

fn median(xs: &[u64]) -> u64 {
    let mut v = xs.to_vec();
    v.sort_unstable();
    v[v.len() / 2]
}

fn targets_for(base_sends: &[u64], covert_ipds: &[u64]) -> Vec<u64> {
    let mut cov_abs = vec![0u64];
    let mut t = 0u64;
    for &d in covert_ipds.iter().take(base_sends.len() - 1) {
        t += d;
        cov_abs.push(t);
    }
    let offset = base_sends
        .iter()
        .zip(&cov_abs)
        .map(|(&b, &c)| b.saturating_sub(c))
        .max()
        .unwrap_or(0)
        + 150_000;
    cov_abs.iter().map(|&c| c + offset).collect()
}
