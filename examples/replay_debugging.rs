//! Replay debugging: deterministic replay as a developer tool (§9 lists
//! debugging and forensics among TDR's applications).
//!
//! ```text
//! cargo run --release --example replay_debugging
//! ```
//!
//! A server run misbehaves (an input triggers an expensive code path). The
//! recorded log lets us re-execute the exact same run as many times as we
//! like — with identical instruction counts *and* timing — and bisect to
//! the offending event by replaying to intermediate instruction counts.

use sanity_tdr::Sanity;
use workloads::bootserve;

fn main() {
    println!("Replay debugging session");
    println!("========================\n");

    // Record a serve run where request #7 is a "poison" input (bigger
    // payload → a visibly longer handling time).
    let sanity = Sanity::new(bootserve::bootserve_program(30, 12));
    let rec = sanity
        .record(1, |vm| {
            for k in 0..12u64 {
                let size = if k == 7 { 120 } else { 24 };
                vm.machine_mut()
                    .deliver_packet(2_000_000 + k * 600_000, vec![k as u8; size]);
            }
        })
        .expect("record");
    println!(
        "recorded: {} instructions, {} packets in the log",
        rec.outcome.icount,
        rec.log.packets.len()
    );

    // The bug reproduces on every replay — timing included.
    let r1 = sanity.replay(&rec.log, 2, |_| {}).expect("replay");
    let r2 = sanity.replay(&rec.log, 3, |_| {}).expect("replay");
    assert_eq!(r1.outcome.icount, r2.outcome.icount);
    println!("replays are instruction-identical: {}", r1.outcome.icount);

    // Localize the slow request from the replayed event marks: the gap
    // between consecutive packet-out events spikes at the poison input.
    let outs: Vec<u128> = r1
        .marks
        .iter()
        .filter(|m| m.kind == machine::MarkKind::PacketOut)
        .map(|m| m.wall_ps)
        .collect();
    let mut worst = (0usize, 0u128);
    for (k, w) in outs.windows(2).enumerate() {
        let gap = w[1] - w[0];
        if gap > worst.1 {
            worst = (k + 1, gap);
        }
    }
    println!(
        "slowest response gap precedes response #{}: {:.3} ms (poison input was #7)",
        worst.0,
        worst.1 as f64 / 1e9
    );

    // Replay only the prefix up to the suspicious event — the §3.2 segment
    // replay an auditor would use on a long-running service.
    let packet7 = &rec.log.packets[7];
    println!(
        "log says the poison packet was consumed at instruction {} ({} bytes)",
        packet7.icount,
        packet7.data.len()
    );
    assert_eq!(packet7.data.len(), 120);
    println!("\nverdict: request #7's oversized payload triggers the slow path");
}
