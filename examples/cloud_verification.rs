//! Cloud verification: the paper's first motivating scenario (§1, Fig. 1a).
//!
//! ```text
//! cargo run --release --example cloud_verification
//! ```
//!
//! Bob pays Alice for a fast machine type T. He records his workload's
//! timing on the (alleged) type-T instance, then reproduces the execution
//! on a reference machine of type T he controls. If Alice actually
//! provisioned a slower type T', the reproduced timing disagrees.

use machine::MachineConfig;
use sanity_tdr::{compare, Sanity};
use sim_core::{CacheParams, CoreParams};
use workloads::scimark::Kernel;

/// The slower machine type T': half the clock, smaller L2.
fn slow_type() -> MachineConfig {
    let mut cfg = MachineConfig::sanity();
    cfg.nominal_hz = 60_000_000; // 60 MHz-class instead of 100.
    cfg.core = CoreParams {
        l2: CacheParams {
            sets: 128, // 64 KiB instead of 256 KiB.
            ..CacheParams::l2()
        },
        ..CoreParams::default_params()
    };
    cfg
}

fn main() {
    println!("Cloud machine-type verification");
    println!("===============================\n");
    let workload = Kernel::Sor.program_small();

    // What Bob observes from the remote machine: completion wall time.
    // Case A: Alice provisioned the promised type T.
    let honest = Sanity::new(workload.clone());
    let observed_honest = honest.record(1, |_| {}).expect("record");

    // Case B: Alice cheaped out with type T'.
    let cheat = Sanity::new(workload.clone()).with_machine_config(slow_type());
    let observed_cheat = cheat.record(1, |_| {}).expect("record");

    // Bob reproduces the run on his own reference type-T machine.
    let reference = Sanity::new(workload);
    let reproduced = reference
        .replay(&observed_honest.log, 42, |_| {})
        .expect("replay");

    let honest_ms = observed_honest.outcome.wall_ps as f64 / 1e9;
    let cheat_ms = observed_cheat.outcome.wall_ps as f64 / 1e9;
    let repro_ms = reproduced.outcome.wall_ps as f64 / 1e9;
    println!("observed on honest T:    {honest_ms:.3} ms");
    println!("observed on cheaper T':  {cheat_ms:.3} ms");
    println!("reproduced on local T:   {repro_ms:.3} ms\n");

    let dev_honest =
        compare::relative_error(observed_honest.outcome.cycles, reproduced.outcome.cycles);
    println!(
        "honest claim vs reproduction: {:.3}% deviation — consistent with type T",
        dev_honest * 100.0
    );
    let dev_cheat = (cheat_ms - repro_ms).abs() / repro_ms;
    println!(
        "cheating claim vs reproduction: {:.1}% deviation — NOT a type-T machine",
        dev_cheat * 100.0
    );
    assert!(dev_honest < 0.02);
    assert!(dev_cheat > 0.20);
}
