//! Fleet audit: the batch pipeline over dozens of mixed sessions.
//!
//! A cloud operator records every tenant session of one NFS service. Most
//! tenants are clean; a few smuggle data out through covert timing
//! channels — TRCTC (constant two-bin encoding) and the paper's §6.8
//! "needle": a single stretched packet. The operator trains a
//! `DetectorBattery` on clean sessions, builds a persistent
//! `AuditService` (`Sanity::audit_service`) whose worker pool and trained
//! battery stay warm, serializes the fleet into a TDRB batch (the
//! on-the-wire form sessions actually arrive in) and submits it: sessions
//! decode lazily in bounded memory, audit replays shard across cores, and
//! every session is scored with all five Fig. 8 detectors in one pass.
//! The ticket streams verdicts as workers produce them; the final report
//! is byte-identical to the one-shot `Sanity::audit_batch` over the same
//! bytes, with the TDR scores untouched by the battery.
//!
//! Run with `cargo run --release --example fleet_audit`.

use std::collections::HashSet;

use std::net::{TcpListener, TcpStream};

use channels::{message_bits, Needle, TimingChannel, Trctc};
use detectors::{CceTest, Detector, DetectorBattery, RegularityTest};
use sanity_tdr::audit_pipeline::ingest;
use sanity_tdr::audit_pipeline::verdict::{labeled_roc, labeled_roc_by_detector};
use sanity_tdr::{compare, serve_tcp, AuditConfig, AuditJob, BatteryMode, Client, Sanity};
use vm::TargetSendTimes;
use workloads::nfs;

const SESSIONS: u64 = 24;

fn targets_for_covert(base_sends: &[u64], covert_ipds: &[u64]) -> Vec<u64> {
    let mut cov_abs = vec![0u64];
    let mut t = 0u64;
    for &d in covert_ipds.iter().take(base_sends.len() - 1) {
        t += d;
        cov_abs.push(t);
    }
    let offset = base_sends
        .iter()
        .zip(&cov_abs)
        .map(|(&b, &c)| b.saturating_sub(c))
        .max()
        .unwrap_or(0)
        + 150_000;
    cov_abs.iter().map(|&c| c + offset).collect()
}

fn main() {
    // One service: same binary and file set for every session.
    let files = nfs::make_files(6, 2048, 6144, 4242);
    let sanity = Sanity::new(nfs::server_program(files.len() as i32)).with_files(files.clone());

    // Train the detector battery on clean sessions of the same service —
    // the traces a fleet operator already has from known-good days.
    let train: Vec<Vec<u64>> = (0..6u64)
        .map(|k| {
            let sched = nfs::client_schedule(&files, 200_000, 740_000, 30_000 + k);
            let rec = sanity
                .record(900 + k, move |vm| {
                    for (at, pkt) in sched.packets {
                        vm.machine_mut().deliver_packet(at, pkt);
                    }
                })
                .expect("record training session");
            compare::tx_ipds_cycles(&rec.tx)
        })
        .collect();
    // Sessions here are only a handful of IPDs long, so the windowed
    // detectors need smaller windows/patterns than the paper defaults.
    let mut battery = DetectorBattery::new();
    battery.rt = RegularityTest::new(3);
    battery.cce = CceTest::new(5, 3);
    battery.train(&train);
    let sanity = sanity.with_battery(battery);

    // Ground truth for this benchmark fleet.
    let trctc_ids: HashSet<u64> = [4, 9, 19].into_iter().collect();
    let needle_ids: HashSet<u64> = [14, 22].into_iter().collect();
    let covert_ids: HashSet<u64> = trctc_ids.union(&needle_ids).copied().collect();

    println!(
        "recording {SESSIONS} sessions ({} covert: TRCTC {:?}, needle {:?})...",
        covert_ids.len(),
        {
            let mut v: Vec<_> = trctc_ids.iter().collect();
            v.sort();
            v
        },
        {
            let mut v: Vec<_> = needle_ids.iter().collect();
            v.sort();
            v
        }
    );

    let mut jobs = Vec::new();
    for id in 0..SESSIONS {
        // Each session is a different client of the same service.
        let sched = nfs::client_schedule(&files, 200_000, 740_000, 10_000 + id);
        let packets = sched.packets;
        let deliver = |vm: &mut vm::Vm| {
            for (at, pkt) in packets.clone() {
                vm.machine_mut().deliver_packet(at, pkt);
            }
        };
        let clean = sanity.record(id, deliver).expect("record");

        let rec = if covert_ids.contains(&id) {
            // Re-record with the channel driving the send times.
            let clean_ipds = compare::tx_ipds_cycles(&clean.tx);
            let base_sends: Vec<u64> = clean.tx.iter().map(|t| t.cycle).collect();
            let covert_ipds = if trctc_ids.contains(&id) {
                let mut ch = Trctc::new(7 + id);
                ch.encode(&message_bits(clean_ipds.len(), 3 + id), &clean_ipds)
            } else {
                let mut needle = Needle::new(clean_ipds.len(), 0.40);
                needle.encode(&[true], &clean_ipds)
            };
            let targets = targets_for_covert(&base_sends, &covert_ipds[..clean_ipds.len()]);
            sanity
                .record(id, |vm| {
                    deliver(vm);
                    vm.set_delay_model(Box::new(TargetSendTimes::new(targets)));
                })
                .expect("record covert")
        } else {
            clean
        };

        jobs.push(AuditJob {
            session_id: id,
            observed_ipds: compare::tx_ipds_cycles(&rec.tx),
            log: rec.log,
        });
    }

    // Serialize the fleet into the TDRB wire format — this is what a batch
    // arriving from disk or the network looks like.
    let batch_bytes = ingest::encode_batch(&jobs);
    println!(
        "fleet serialized to {} KiB of TDRB ({} bytes/session)",
        batch_bytes.len() / 1024,
        batch_bytes.len() / jobs.len()
    );

    // The primary path: a persistent service, built once — its workers
    // and the trained battery stay warm for every batch this fleet will
    // ever submit. The batch streams through it with sessions decoded
    // lazily: at most `high_water` sessions are ever resident, so the
    // same code handles a batch far larger than RAM. (At least 4 workers
    // even on a small machine, so the sharded path is really exercised.)
    let workers = AuditConfig::default().resolved_workers().max(4);
    let service = sanity
        .audit_service()
        .workers(workers)
        .high_water(8)
        .battery(BatteryMode::Full)
        .build()
        .expect("valid service configuration");
    let mut ticket = service
        .submit_stream(std::io::Cursor::new(batch_bytes.clone()))
        .expect("batch header decodes");
    // The ticket streams verdicts as workers finish them (arrival order
    // is scheduling-dependent; the final report is not).
    let mut streamed = 0usize;
    while ticket.recv().is_some() {
        streamed += 1;
    }
    let sharded = ticket.wait_stream().expect("stream audits");
    assert_eq!(streamed, sharded.verdicts.len());

    // Cross-check: the materialized batch path on a single worker must
    // produce byte-identical verdicts — ingest mode, worker count, and
    // scheduling can never change an audit outcome.
    let single = sanity.audit_batch(
        &jobs,
        &AuditConfig {
            workers: 1,
            battery: BatteryMode::Full,
            ..AuditConfig::default()
        },
    );
    assert_eq!(
        single.verdicts, sharded.verdicts,
        "streamed verdicts must be identical to the 1-worker materialized batch"
    );
    assert_eq!(single.summary, sharded.summary);

    // Warm resubmission: the same service audits a second copy of the
    // batch without respawning anything, and the report is identical.
    let resubmitted = service
        .submit_stream(std::io::Cursor::new(batch_bytes.clone()))
        .expect("batch header decodes")
        .wait_stream()
        .expect("stream audits");
    assert_eq!(resubmitted.summary, sharded.summary);
    println!(
        "warm service re-audited the batch: {} sessions total through {} workers",
        service.sessions_audited(),
        service.workers()
    );

    // Deployment: the same warm service behind a TCP listener — the
    // daemon (`tdrd`) a fleet's log sources actually connect to. The
    // batch travels the TDRC control plane over localhost, and the wire
    // verdicts must come back bit-identical to the in-process ones.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let daemon = serve_tcp(service, listener).expect("daemon starts");
    let mut client =
        Client::new(TcpStream::connect(daemon.local_addr()).expect("connect to daemon"));
    let outcome = client
        .submit_batch(1, batch_bytes)
        .expect("TDRC protocol stays clean");
    let wire = outcome.result.expect("batch audits over the wire");
    assert_eq!(
        outcome.verdicts, sharded.verdicts,
        "TCP wire verdicts must be bit-identical to the in-process audit"
    );
    assert_eq!(wire.summary, sharded.summary);
    client.shutdown().expect("connection shutdown acked");
    let report = daemon.shutdown();
    assert_eq!(report.connection_errors, 0);
    println!(
        "TCP daemon served the batch over {} connection(s): wire verdicts bit-identical",
        report.connections_accepted
    );
    report.service.shutdown();

    println!(
        "\naudited {} sessions on {} workers (peak {} sessions resident)\n",
        sharded.summary.sessions, sharded.workers, sharded.peak_resident
    );
    println!(" session    score  verdict");
    for v in &sharded.verdicts {
        println!(
            "  {:>6}  {:>6.2}%  {}",
            v.session_id,
            v.score * 100.0,
            if v.flagged { "FLAGGED" } else { "clean" }
        );
    }

    let summary = &sharded.summary;
    println!("\nflagged sessions: {:?}", summary.flagged);
    println!("score histogram:  {}", summary.histogram.render());
    let (_, auc) = labeled_roc(&sharded.verdicts, &covert_ids);
    println!("labeled ROC AUC:  {auc:.3}");

    // The per-detector fleet report (Fig. 8 per fleet): every session was
    // scored by all five detectors in the same pass.
    println!("\nper-detector fleet AUC (labeled):");
    let by_detector = labeled_roc_by_detector(&sharded.verdicts, &covert_ids);
    for (name, (_, det_auc)) in &by_detector {
        let stats = &summary.detector_stats[name];
        println!(
            "  {:<11} AUC {:.3}   mean {:>8.4}  max {:>8.4}",
            name, det_auc, stats.mean, stats.max
        );
    }
    let sanity_auc = by_detector["Sanity"].1;
    assert!(
        by_detector
            .iter()
            .all(|(n, (_, a))| n == "Sanity" || *a <= sanity_auc),
        "no statistical detector beats TDR on this fleet"
    );

    // The acceptance bar: every covert session flagged, no clean session
    // flagged.
    let mut expected: Vec<u64> = covert_ids.iter().copied().collect();
    expected.sort_unstable();
    assert_eq!(
        summary.flagged, expected,
        "all covert sessions flagged, zero false positives"
    );
    assert!((auc - 1.0).abs() < 1e-9, "perfect separation");
    println!("\nall covert sessions flagged, zero false positives ✓");
}
