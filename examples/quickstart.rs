//! Quickstart: record an execution and reproduce its timing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs a small SciMark FFT under the full Sanity configuration, replays it
//! on a "different machine of the same type" (fresh seeds), and reports how
//! closely the timing was reproduced — the paper's headline property
//! (≤1.85% on commodity hardware, §6.4).

use sanity_tdr::{compare, Sanity};
use workloads::scimark::Kernel;

fn main() {
    println!("Sanity/TDR quickstart");
    println!("=====================\n");

    // 1. Wrap a program in the TDR system. Kernel::Fft is a bytecode port
    //    of SciMark's FFT; any jbc::Program works.
    let sanity = Sanity::new(Kernel::Fft.program_small());

    // 2. Record ("play"). The log captures every nondeterministic input.
    let rec = sanity.record(1, |_vm| {}).expect("record");
    println!(
        "play:   {:>10} instructions, {:>11} cycles, {:.3} ms",
        rec.outcome.icount,
        rec.outcome.cycles,
        rec.outcome.wall_ps as f64 / 1e9
    );
    println!("log:    {} bytes", rec.log.stats().total_bytes);

    // 3. Replay on another machine of the same type (different run seed =
    //    different irreducible noise, same configuration).
    let rep = sanity.replay(&rec.log, 2, |_vm| {}).expect("replay");
    println!(
        "replay: {:>10} instructions, {:>11} cycles, {:.3} ms",
        rep.outcome.icount,
        rep.outcome.cycles,
        rep.outcome.wall_ps as f64 / 1e9
    );

    // 4. Compare: functional behavior is identical; timing agrees to the
    //    TDR noise floor.
    assert_eq!(rec.outcome.console, rep.outcome.console);
    let err = compare::relative_error(rec.outcome.cycles, rep.outcome.cycles);
    println!("\ntiming reproduced to within {:.4}%", err * 100.0);
    println!("(the paper reports ≤1.85% on commodity hardware)");
}
