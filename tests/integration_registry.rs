//! Integration: the reference-program registry end to end.
//!
//! One daemon concurrently audits three *distinct* registered references
//! (echo, SciMark FFT, the NFS server) over real TCP, with an LRU budget
//! small enough to force eviction and reload mid-run — and every wire
//! verdict must be bit-identical to a single-reference in-process
//! `audit_batch` of the same jobs. Eviction is allowed to cost a reload
//! round-trip (`UnknownReference` → re-put → retry); it is never allowed
//! to change a verdict byte.
//!
//! Registry references travel program-only (FORMATS.md §7), so the NFS
//! sessions here are LOOKUP-only (the `OP_LOOKUP` path never touches the
//! stable-storage file set) and the FFT sessions are pure compute.

use std::net::TcpListener;
use std::sync::Arc;

use sanity_tdr::audit_pipeline::ingest;
use sanity_tdr::jbc::container;
use sanity_tdr::{
    serve_tcp_with, AckStatus, AuditConfig, AuditJob, BatchReport, Client, ControlError,
    DaemonOptions, ReferenceId, Sanity,
};
use workloads::nfs::{encode_request, server_program, OP_LOOKUP};
use workloads::scimark::fft_program;

#[path = "torture_common.rs"]
mod torture_common;
use torture_common::{echo_jobs, echo_sanity_with};

/// One registered reference plus recorded suspect sessions for it.
struct Fixture {
    name: &'static str,
    tdrp: Vec<u8>,
    id: ReferenceId,
    jobs: Vec<AuditJob>,
    /// The single-reference in-process baseline for `jobs`.
    expected: BatchReport,
}

/// The audit config both sides score under. Verdicts are independent of
/// worker count and transport; the registry path is TDR-only by
/// construction (a TDRP ships no battery), which is also `Sanity::new`'s
/// scoring mode — so the two sides agree by default.
fn cfg() -> AuditConfig {
    AuditConfig {
        workers: 2,
        ..AuditConfig::default()
    }
}

fn fixtures() -> Vec<Fixture> {
    let mut out = Vec::new();

    // Echo: request/response rounds, the classic timing surface.
    let echo = echo_sanity_with(3);
    let echo_jobs = echo_jobs(&echo, 0..3);
    out.push(fixture("echo", echo, echo_jobs));

    // SciMark FFT: pure compute — no packets delivered, no transmissions.
    let fft = Sanity::new(fft_program(64));
    let fft_jobs: Vec<AuditJob> = (0..2u64)
        .map(|id| {
            let rec = fft.record(40 + id, |_vm| {}).expect("record FFT session");
            AuditJob {
                session_id: id,
                observed_ipds: rec.tx_ipds_cycles(),
                log: rec.log,
            }
        })
        .collect();
    out.push(fixture("scimark_fft", fft, fft_jobs));

    // NFS: LOOKUP-only sessions against a file-less server (OP_LOOKUP
    // never calls file_read/file_size, so a program-only reference
    // replays it exactly).
    let nfs = Sanity::new(server_program(3));
    let nfs_jobs: Vec<AuditJob> = (0..3u64)
        .map(|id| {
            let rec = nfs
                .record(90 + id, move |vm| {
                    for k in 0..3u64 {
                        let req = encode_request(OP_LOOKUP, (id + k) as u8 % 5, 0, 0);
                        vm.machine_mut()
                            .deliver_packet(150_000 + k * 500_000 + id * 7_000, req);
                    }
                })
                .expect("record NFS session");
            AuditJob {
                session_id: id,
                observed_ipds: rec.tx_ipds_cycles(),
                log: rec.log,
            }
        })
        .collect();
    out.push(fixture("nfs_lookup", nfs, nfs_jobs));

    out
}

fn fixture(name: &'static str, sanity: Sanity, jobs: Vec<AuditJob>) -> Fixture {
    let program = sanity.program();
    let expected = sanity.audit_batch(&jobs, &cfg());
    Fixture {
        name,
        tdrp: container::seal(program),
        id: container::reference_id(program),
        jobs,
        expected,
    }
}

/// A budget that admits any two of the three references but not all
/// three — so a run that cycles through all of them must evict. Costs
/// are measured the way the registry itself accounts them (canonical
/// program bytes), by loading each fixture into a throwaway registry.
fn thrash_budget(fixtures: &[Fixture]) -> u64 {
    use sanity_tdr::ReferenceRegistry;
    let costs: Vec<u64> = fixtures
        .iter()
        .map(|f| {
            let probe = ReferenceRegistry::new(u64::MAX);
            probe.load(&f.tdrp).expect("fixture admits").resident_bytes
        })
        .collect();
    let total: u64 = costs.iter().sum();
    assert!(costs.iter().all(|&c| c > 0), "zero-cost fixture");
    // `total - 1` admits every pair (any two costs sum to at most
    // `total - min`, and every cost is positive) but never all three.
    total - 1
}

/// The tentpole acceptance test: three references, one daemon, real TCP,
/// interleaved concurrent clients, LRU thrash — verdicts bit-identical
/// to in-process audits.
#[test]
fn daemon_audits_three_references_concurrently_with_eviction() {
    let fixtures = Arc::new(fixtures());
    let budget = thrash_budget(&fixtures);

    let service = echo_sanity_with(3)
        .audit_service()
        .workers(2)
        .reference_budget(budget)
        .build()
        .expect("valid configuration");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let daemon = serve_tcp_with(service, listener, DaemonOptions::default()).expect("serve");
    let addr = daemon.local_addr();

    const ROUNDS: usize = 3;
    let mut handles = Vec::new();
    for (slot, _) in fixtures.iter().enumerate() {
        let fixtures = Arc::clone(&fixtures);
        handles.push(std::thread::spawn(move || {
            let f = &fixtures[slot];
            let stream = std::net::TcpStream::connect(addr).expect("connect");
            let mut client = Client::new(stream);
            let put = client
                .put_reference(slot as u64, f.tdrp.clone())
                .expect("put_reference exchange");
            assert_eq!(
                put.reference, f.id,
                "{}: daemon admitted a different id",
                f.name
            );
            assert!(
                matches!(put.status, AckStatus::Loaded | AckStatus::AlreadyResident),
                "{}: not admitted: {:?}",
                f.name,
                put.status
            );
            let mut reloads = 0usize;
            for round in 0..ROUNDS as u64 {
                let tdrb = ingest::encode_batch(&f.jobs);
                // Under LRU thrash another client's load may have evicted
                // this reference between batches: the daemon answers with
                // a typed UnknownReference and `submit_batch_reput`
                // recovers with one bounded re-put (the bytes are
                // content-addressed, so this is always safe). A second
                // eviction racing the same submission surfaces as a typed
                // ReferenceThrash, which this torture retries at its own
                // bounded level. Eviction costs round-trips, never a
                // verdict.
                let outcome = loop {
                    match client.submit_batch_reput(
                        slot as u64 * 100 + round,
                        tdrb.clone(),
                        f.id,
                        &f.tdrp,
                    ) {
                        Ok(outcome) => break outcome,
                        Err(ControlError::ReferenceThrash(id)) => {
                            assert_eq!(id, f.id);
                            reloads += 1;
                            assert!(reloads <= 64, "{}: reload livelock", f.name);
                        }
                        Err(e) => panic!("{}: round {round} protocol failure: {e}", f.name),
                    }
                };
                let summary = outcome.result.unwrap_or_else(|msg| {
                    panic!("{}: round {round} rejected in-band: {msg}", f.name)
                });
                assert_eq!(summary.summary, f.expected.summary, "{}: summary", f.name);
                assert_eq!(outcome.verdicts.len(), f.expected.verdicts.len());
                for (wire, local) in outcome.verdicts.iter().zip(&f.expected.verdicts) {
                    assert_eq!(wire, local, "{}: verdict diverged", f.name);
                    assert_eq!(
                        wire.score.to_bits(),
                        local.score.to_bits(),
                        "{}: score bits diverged",
                        f.name
                    );
                }
            }
            client.shutdown().expect("shutdown ack");
            reloads
        }));
    }
    let reloads: usize = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .sum();

    // The budget admits two references but not three, so the working set
    // was over budget the moment the third client registered. Whether an
    // eviction already fired during the interleaved phase depends on pin
    // timing (a load never evicts a pinned or just-touched entry); force
    // the question deterministically by loading a *fourth* reference now
    // that nothing is pinned — `evict_locked` must shed the LRU tail.
    let fourth = echo_sanity_with(5);
    daemon
        .service()
        .put_reference(&container::seal(fourth.program()))
        .expect("fourth reference admits");
    let snap = daemon.service().metrics_snapshot();
    assert!(
        snap.counter("registry_evictions") >= 1,
        "no eviction under a {budget}-byte budget (reloads observed: {reloads})"
    );
    assert_eq!(snap.counter("registry_verify_failures"), 0);

    // And reload-after-eviction still changes no verdict byte: sweep
    // every fixture once more on a fresh connection, re-putting on a
    // typed miss.
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut client = Client::new(stream);
    for f in fixtures.iter() {
        let tdrb = ingest::encode_batch(&f.jobs);
        // No concurrent clients here, so the helper's single bounded
        // re-put deterministically covers the forced eviction.
        let outcome = client
            .submit_batch_reput(9_000, tdrb.clone(), f.id, &f.tdrp)
            .unwrap_or_else(|e| panic!("{}: post-eviction protocol failure: {e}", f.name));
        let summary = outcome.result.expect("audits");
        assert_eq!(
            summary.summary, f.expected.summary,
            "{}: post-eviction",
            f.name
        );
        for (wire, local) in outcome.verdicts.iter().zip(&f.expected.verdicts) {
            assert_eq!(wire, local, "{}: post-eviction verdict diverged", f.name);
        }
    }
    client.shutdown().expect("ack");
    daemon.shutdown();
}

/// A tampered container is refused with a typed in-band rejection naming
/// the failure, consumes nothing, and the connection (and daemon) keep
/// serving: the next good put and batch behave exactly as without the
/// attack.
#[test]
fn tampered_put_reference_is_rejected_in_band_and_daemon_keeps_serving() {
    let fixtures = fixtures();
    let f = &fixtures[0];

    let service = echo_sanity_with(3)
        .audit_service()
        .workers(1)
        .build()
        .expect("valid configuration");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let daemon = serve_tcp_with(service, listener, DaemonOptions::default()).expect("serve");

    let stream = std::net::TcpStream::connect(daemon.local_addr()).expect("connect");
    let mut client = Client::new(stream);

    // Flip one program byte: the CRC (or digest) check must catch it.
    let mut tampered = f.tdrp.clone();
    let at = tampered.len() / 2;
    tampered[at] ^= 0x40;
    let put = client
        .put_reference(1, tampered)
        .expect("exchange completes");
    match &put.status {
        AckStatus::Rejected(msg) => assert!(!msg.is_empty(), "rejection names the failure"),
        other => panic!("tampered container admitted: {other:?}"),
    }
    assert_eq!(
        put.reference,
        ReferenceId([0; 32]),
        "no id for a refused put"
    );

    // Unknown id on submit: typed, in-band, connection survives.
    let err = client
        .submit_batch_for(7, ingest::encode_batch(&f.jobs), f.id)
        .expect_err("unregistered reference must not audit");
    assert!(
        matches!(err, ControlError::UnknownReference(id) if id == f.id),
        "expected UnknownReference, got {err}"
    );

    // Same connection, good container: everything works.
    let put = client.put_reference(2, f.tdrp.clone()).expect("exchange");
    assert!(matches!(put.status, AckStatus::Loaded));
    assert_eq!(put.reference, f.id);
    let outcome = client
        .submit_batch_for(8, ingest::encode_batch(&f.jobs), f.id)
        .expect("protocol clean");
    let summary = outcome.result.expect("audits");
    assert_eq!(summary.summary, f.expected.summary);
    for (wire, local) in outcome.verdicts.iter().zip(&f.expected.verdicts) {
        assert_eq!(wire, local);
    }

    let snap = daemon.service().metrics_snapshot();
    assert_eq!(snap.counter("registry_verify_failures"), 1);
    client.shutdown().expect("ack");
    daemon.shutdown();
}

/// Service-level determinism: the same load/submit sequence produces the
/// same eviction order, and verdicts are bit-identical at *any* budget
/// that admits the working set of each batch — pool temperature and
/// eviction state must never leak into a verdict.
#[test]
fn eviction_order_and_verdicts_are_deterministic_across_budgets() {
    let fixtures = fixtures();
    let thrash = thrash_budget(&fixtures);
    // Budgets: unbounded (no eviction ever) and two-of-three (thrash).
    let budgets = [u64::MAX, thrash];

    let mut verdict_bits: Vec<Vec<Vec<u64>>> = Vec::new();
    let mut eviction_logs: Vec<Vec<ReferenceId>> = Vec::new();
    for &budget in &budgets {
        // Two identical runs per budget: eviction order must be a pure
        // function of the operation sequence.
        let mut logs_at_budget = Vec::new();
        for _run in 0..2 {
            let service = echo_sanity_with(3)
                .audit_service()
                .workers(2)
                .reference_budget(budget)
                .build()
                .expect("valid configuration");
            let mut bits_per_fixture = Vec::new();
            for f in &fixtures {
                let load = service.put_reference(&f.tdrp).expect("admitted");
                assert_eq!(load.id, f.id);
                let ticket = service
                    .submit_batch_for(&f.jobs, f.id)
                    .expect("reference resident at submit time");
                let report = ticket.wait().expect("batch completes");
                assert_eq!(report.summary, f.expected.summary, "{}", f.name);
                let bits: Vec<u64> = report.verdicts.iter().map(|v| v.score.to_bits()).collect();
                for (wire, local) in report.verdicts.iter().zip(&f.expected.verdicts) {
                    assert_eq!(wire, local, "{} at budget {budget}", f.name);
                }
                bits_per_fixture.push(bits);
            }
            logs_at_budget.push(service.reference_registry().eviction_log());
            verdict_bits.push(bits_per_fixture);
            service.shutdown();
        }
        assert_eq!(
            logs_at_budget[0], logs_at_budget[1],
            "eviction order diverged between identical runs at budget {budget}"
        );
        eviction_logs.push(logs_at_budget.remove(0));
    }

    // Verdict bits identical across every run at every budget.
    for later in &verdict_bits[1..] {
        assert_eq!(&verdict_bits[0], later, "verdict bits depend on budget");
    }
    // The unbounded run never evicts; the thrash run does.
    assert!(eviction_logs[0].is_empty(), "unbounded budget evicted");
    assert!(
        !eviction_logs[1].is_empty(),
        "thrash budget ({thrash} bytes) never evicted"
    );
}

/// A client-side transport shim that plays the eviction adversary:
/// before forwarding each complete `SubmitBatch` frame to the daemon, it
/// loads a rival reference directly into the daemon's registry, evicting
/// the reference the batch is about to name. A single client can never
/// produce this interleaving on its own (its re-put makes the reference
/// most-recently-used, which the LRU never evicts), so the shim stands in
/// for the concurrent tenant that makes budget thrash real.
struct EvictingTransport<'a> {
    inner: std::net::TcpStream,
    service: &'a sanity_tdr::AuditService,
    rival_tdrp: Vec<u8>,
    sabotage: Arc<std::sync::atomic::AtomicBool>,
    pending: Vec<u8>,
}

impl std::io::Write for EvictingTransport<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.pending.extend_from_slice(buf);
        // Forward every complete frame ([u32 LE length][payload]); the
        // frame kind lives at payload offset 8 (FORMATS.md §5.1).
        loop {
            if self.pending.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(self.pending[..4].try_into().expect("4 bytes")) as usize;
            let total = 4 + len;
            if self.pending.len() < total {
                break;
            }
            const SUBMIT_BATCH: u8 = 0x01;
            if len > 8
                && self.pending[12] == SUBMIT_BATCH
                && self.sabotage.load(std::sync::atomic::Ordering::SeqCst)
            {
                self.service
                    .put_reference(&self.rival_tdrp)
                    .expect("rival reference admits");
            }
            self.inner.write_all(&self.pending[..total])?;
            self.pending.drain(..total);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl std::io::Read for EvictingTransport<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

/// Regression (bounded re-put): under adversarial budget thrash the
/// recovery path must surface a typed `ReferenceThrash` after exactly one
/// re-put attempt — the old client loop (`Unknown` → re-put → retry,
/// unbounded) livelocked here, burning a put + submit round-trip per
/// iteration forever. The error is batch-scoped: once the adversary goes
/// quiet, the same connection recovers and the verdicts are bit-identical
/// to the in-process baseline.
#[test]
fn re_put_thrash_surfaces_typed_error_not_livelock() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let victim = echo_sanity_with(3);
    let rival = echo_sanity_with(5);
    let victim_tdrp = container::seal(victim.program());
    let victim_id = container::reference_id(victim.program());
    let rival_tdrp = container::seal(rival.program());

    // A budget that admits either reference alone, never both — the
    // 1-reference daemon. Costs measured the way the registry accounts
    // them (canonical program bytes).
    let cost = |tdrp: &[u8]| {
        let probe = sanity_tdr::ReferenceRegistry::new(u64::MAX);
        probe.load(tdrp).expect("probe admits").resident_bytes
    };
    let budget = cost(&victim_tdrp).max(cost(&rival_tdrp));

    let service = echo_sanity_with(3)
        .audit_service()
        .workers(2)
        .reference_budget(budget)
        .build()
        .expect("valid configuration");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let daemon = serve_tcp_with(service, listener, DaemonOptions::default()).expect("serve");

    let jobs = echo_jobs(&victim, 0..2);
    let expected = victim.audit_batch(&jobs, &cfg());
    let tdrb = ingest::encode_batch(&jobs);

    let sabotage = Arc::new(AtomicBool::new(true));
    let stream = std::net::TcpStream::connect(daemon.local_addr()).expect("connect");
    let mut client = Client::new(EvictingTransport {
        inner: stream,
        service: daemon.service(),
        rival_tdrp: rival_tdrp.clone(),
        sabotage: Arc::clone(&sabotage),
        pending: Vec::new(),
    });

    let put = client
        .put_reference(1, victim_tdrp.clone())
        .expect("put_reference exchange");
    assert_eq!(put.reference, victim_id);

    // Both the first submission and the post-re-put resubmission find the
    // reference evicted (the shim reloads the rival before each), so the
    // bounded path must give up typed — and after exactly 2 attempts.
    match client.submit_batch_reput(7, tdrb.clone(), victim_id, &victim_tdrp) {
        Err(ControlError::ReferenceThrash(id)) => assert_eq!(id, victim_id),
        other => panic!("expected a typed ReferenceThrash, got {other:?}"),
    }

    // Batch-scoped, not connection-fatal: with the adversary quiet the
    // same connection recovers via one bounded re-put, bit-identically.
    sabotage.store(false, Ordering::SeqCst);
    let outcome = client
        .submit_batch_reput(8, tdrb, victim_id, &victim_tdrp)
        .expect("recovers once the thrash stops");
    let summary = outcome.result.expect("audits");
    assert_eq!(summary.summary, expected.summary);
    assert_eq!(outcome.verdicts.len(), expected.verdicts.len());
    for (wire, local) in outcome.verdicts.iter().zip(&expected.verdicts) {
        assert_eq!(wire, local, "post-thrash verdict diverged");
    }
    client.shutdown().expect("shutdown ack");
    daemon.shutdown();
}
