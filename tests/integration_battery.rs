//! Cross-crate integration: the trained detector battery through the
//! fleet pipeline.
//!
//! The acceptance bar of the battery refactor: enabling full-battery
//! scoring must not perturb the TDR path — a battery-enabled
//! `audit_stream` run produces TDR scores *byte-identical* to the
//! pre-refactor TDR-only path, on top of which every session gains the
//! other four Fig. 8 detector scores.

use std::collections::HashSet;

use detectors::{CceTest, Detector, DetectorBattery, RegularityTest, TraceView};
use sanity_tdr::audit_pipeline::ingest;
use sanity_tdr::audit_pipeline::verdict::labeled_roc_by_detector;
use sanity_tdr::{compare, AuditConfig, AuditJob, BatteryMode, Sanity};
use workloads::nfs;

/// One NFS service, a training set of clean traces, and a fleet of
/// recorded sessions; sessions whose id is in `covert` get two packets
/// delayed by ~20% of the IPD.
fn fleet(n: u64, covert: &[u64]) -> (Sanity, Vec<Vec<u64>>, Vec<AuditJob>) {
    let files = nfs::make_files(6, 2048, 6144, 77);
    let sanity = Sanity::new(nfs::server_program(files.len() as i32)).with_files(files.clone());
    let train: Vec<Vec<u64>> = (0..5u64)
        .map(|k| {
            let sched = nfs::client_schedule(&files, 200_000, 740_000, 9_000 + k);
            let rec = sanity
                .record(700 + k, move |vm| {
                    for (at, pkt) in sched.packets {
                        vm.machine_mut().deliver_packet(at, pkt);
                    }
                })
                .expect("record training trace");
            compare::tx_ipds_cycles(&rec.tx)
        })
        .collect();
    let jobs = (0..n)
        .map(|id| {
            let sched = nfs::client_schedule(&files, 200_000, 740_000, 600 + id);
            let is_covert = covert.contains(&id);
            let rec = sanity
                .record(id, |vm| {
                    for (at, pkt) in sched.packets {
                        vm.machine_mut().deliver_packet(at, pkt);
                    }
                    if is_covert {
                        vm.set_delay_model(Box::new(vm::ScheduledDelays::new(vec![
                            0, 150_000, 0, 0, 150_000, 0,
                        ])));
                    }
                })
                .expect("record");
            AuditJob {
                session_id: id,
                observed_ipds: compare::tx_ipds_cycles(&rec.tx),
                log: rec.log,
            }
        })
        .collect();
    (sanity, train, jobs)
}

/// A battery tuned for these short sessions (a handful of IPDs each).
fn short_session_battery(train: &[Vec<u64>]) -> DetectorBattery {
    let mut battery = DetectorBattery::new();
    battery.rt = RegularityTest::new(3);
    battery.cce = CceTest::new(5, 3);
    battery.train(train);
    battery
}

#[test]
fn battery_stream_tdr_scores_byte_identical_to_tdr_only_path() {
    let (sanity, train, jobs) = fleet(6, &[1, 4]);
    let bytes = ingest::encode_batch(&jobs);

    // The pre-refactor path: TDR only, no battery attached.
    let tdr_cfg = AuditConfig {
        workers: 2,
        high_water: 3,
        ..AuditConfig::default()
    };
    let tdr_only = sanity.audit_stream(&bytes[..], &tdr_cfg).expect("stream");

    // The battery-enabled path over the same bytes.
    let armed = sanity.clone().with_battery(short_session_battery(&train));
    let full_cfg = AuditConfig {
        battery: BatteryMode::Full,
        ..tdr_cfg
    };
    let full = armed.audit_stream(&bytes[..], &full_cfg).expect("stream");

    assert_eq!(tdr_only.verdicts.len(), full.verdicts.len());
    for (a, b) in tdr_only.verdicts.iter().zip(&full.verdicts) {
        assert_eq!(a.session_id, b.session_id);
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "session {}: battery must not perturb the TDR score",
            a.session_id
        );
        assert_eq!(a.flagged, b.flagged);
        assert!(
            a.detector_scores.is_empty(),
            "TDR-only verdicts carry no map"
        );
        assert_eq!(b.detector_scores.len(), 5, "full battery scores all five");
        assert_eq!(
            b.detector_scores["Sanity"].to_bits(),
            b.score.to_bits(),
            "the map's Sanity entry is the scalar TDR score"
        );
    }
    assert_eq!(tdr_only.summary.flagged, vec![1, 4]);
    assert_eq!(full.summary.flagged, vec![1, 4]);
    assert_eq!(full.summary.detector_stats.len(), 5);

    // And the materialized battery path agrees byte-for-byte with the
    // streamed one.
    let batch = armed.audit_batch(&jobs, &full_cfg);
    assert_eq!(batch.verdicts, full.verdicts);
    assert_eq!(batch.summary, full.summary);
}

#[test]
fn battery_scores_match_standalone_scoring_of_the_same_traces() {
    // The pipeline's per-detector scores are exactly what scoring the
    // trace by hand produces: same trained state, same TraceView, no
    // pipeline-only transformations.
    let (sanity, train, jobs) = fleet(3, &[]);
    let battery = short_session_battery(&train);
    let armed = sanity.clone().with_battery(battery.clone());
    let report = armed.audit_batch(
        &jobs,
        &AuditConfig {
            workers: 1,
            battery: BatteryMode::Full,
            ..AuditConfig::default()
        },
    );
    let auditor = sanity_tdr::TimingAuditor::new(sanity);
    let cfg = AuditConfig::default();
    for (job, verdict) in jobs.iter().zip(&report.verdicts) {
        let single = auditor
            .audit(
                &job.log,
                &job.observed_ipds,
                cfg.session_seed(job.session_id),
            )
            .expect("audit");
        let by_hand = battery.score_all(&TraceView::with_replay(
            &job.observed_ipds,
            &single.replayed_ipds,
        ));
        for (name, score) in &by_hand {
            assert_eq!(
                score.to_bits(),
                verdict.detector_scores[name].to_bits(),
                "{name} differs between pipeline and standalone scoring"
            );
        }
    }
}

#[test]
fn fleet_report_contains_all_five_detector_curves() {
    let (sanity, train, jobs) = fleet(6, &[2, 5]);
    let armed = sanity.with_battery(short_session_battery(&train));
    let report = armed.audit_batch(
        &jobs,
        &AuditConfig {
            battery: BatteryMode::Full,
            ..AuditConfig::default()
        },
    );
    let covert_ids: HashSet<u64> = [2, 5].into_iter().collect();
    let by_det = labeled_roc_by_detector(&report.verdicts, &covert_ids);
    assert_eq!(by_det.len(), 5);
    let sanity_auc = by_det["Sanity"].1;
    assert!((sanity_auc - 1.0).abs() < 1e-9, "TDR separates perfectly");
    for (name, (curve, auc)) in &by_det {
        assert!(auc.is_finite(), "{name} AUC");
        assert!(*auc <= sanity_auc, "{name} must not beat TDR here");
        assert!(curve.len() >= 2, "{name} curve has anchors");
    }
}

#[test]
fn trained_battery_state_roundtrips_through_json_with_identical_verdicts() {
    let (sanity, train, jobs) = fleet(4, &[3]);
    let battery = short_session_battery(&train);
    let restored = DetectorBattery::from_json(&battery.to_json()).expect("parses");
    let cfg = AuditConfig {
        battery: BatteryMode::Full,
        ..AuditConfig::default()
    };
    let a = sanity
        .clone()
        .with_battery(battery)
        .audit_batch(&jobs, &cfg);
    let b = sanity.with_battery(restored).audit_batch(&jobs, &cfg);
    assert_eq!(
        a.verdicts, b.verdicts,
        "serialized state scores identically"
    );
    assert_eq!(a.summary, b.summary);
}
