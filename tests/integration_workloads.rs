//! Cross-crate integration: the bytecode workloads compute correct results.

use std::sync::Arc;

use machine::{Machine, MachineConfig, Seeds};
use vm::{Vm, VmConfig};
use workloads::scimark::{self, Kernel};

fn run_console(p: jbc::Program) -> Vec<String> {
    let machine = Machine::new(MachineConfig::sanity(), Seeds::from_run(1));
    let mut vm = Vm::new(Arc::new(p), machine, VmConfig::default()).expect("load");
    vm.machine_mut().start_run();
    vm.run().expect("run").console
}

#[test]
fn mc_estimates_pi() {
    let out = run_console(scimark::mc_program(20_000));
    let pi: f64 = out[0].parse().expect("number");
    assert!((pi - std::f64::consts::PI).abs() < 0.06, "π ≈ {pi}");
}

#[test]
fn fft_roundtrip_error_is_tiny() {
    let out = run_console(scimark::fft_program(128));
    let rms: f64 = out[0].parse().expect("number");
    assert!(rms < 1e-9, "forward+inverse RMS error: {rms}");
}

#[test]
fn lu_diagonal_is_finite_and_dominant() {
    let out = run_console(scimark::lu_program(24));
    let diag_sum: f64 = out[0].parse().expect("number");
    assert!(diag_sum.is_finite());
    // Diagonally dominant input: pivots stay comparable to n.
    assert!(diag_sum > 24.0 * 24.0 * 0.2, "Σdiag = {diag_sum}");
}

#[test]
fn sor_relaxation_converges_to_finite_values() {
    let out = run_console(scimark::sor_program(24, 20));
    let center: f64 = out[0].parse().expect("number");
    assert!(center.is_finite());
    assert!(center.abs() < 100.0, "relaxation stays bounded: {center}");
}

#[test]
fn smm_matches_host_reference() {
    // Recompute the sparse multiply in Rust with the same construction and
    // compare checksums.
    let (rows, cols, nz, iters) = (60, 60, 4, 3);
    let out = run_console(scimark::smm_program(rows, cols, nz, iters));
    let got: f64 = out[0].parse().expect("number");

    let mut val = vec![0.0f64; (rows * nz) as usize];
    let mut col = vec![0usize; (rows * nz) as usize];
    for r in 0..rows {
        for k in 0..nz {
            let p = (r * nz + k) as usize;
            col[p] = ((r + k * (cols / nz)) % cols) as usize;
            val[p] = 1.0 + ((p as i32 % 7) as f64) * 0.25;
        }
    }
    let x: Vec<f64> = (0..cols).map(|j| 0.5 + (j % 3) as f64).collect();
    let mut y = vec![0.0f64; rows as usize];
    for _ in 0..iters {
        for (r, slot) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for k in 0..nz as usize {
                let p = r * nz as usize + k;
                sum += val[p] * x[col[p]];
            }
            *slot = sum;
        }
    }
    let want: f64 = y.iter().sum();
    assert!(
        (got - want).abs() < 1e-6,
        "SMM checksum: vm {got} vs host {want}"
    );
}

#[test]
fn all_kernels_run_to_completion_at_small_size() {
    for k in Kernel::all() {
        let out = run_console(k.program_small());
        assert_eq!(out.len(), 1, "{} prints one checksum", k.label());
        let v: f64 = out[0].parse().expect("numeric checksum");
        assert!(v.is_finite(), "{}: {v}", k.label());
    }
}

#[test]
fn gc_survives_kernel_sweep() {
    // Run every kernel on a deliberately small heap to force collections.
    for k in Kernel::all() {
        let machine = Machine::new(MachineConfig::sanity(), Seeds::from_run(2));
        let cfg = VmConfig {
            heap_size: 3 << 20,
            ..VmConfig::default()
        };
        let mut vm = Vm::new(Arc::new(k.program_small()), machine, cfg).expect("load");
        vm.machine_mut().start_run();
        vm.run().unwrap_or_else(|e| panic!("{}: {e}", k.label()));
    }
}
