//! Cross-crate integration: bounded-memory streaming ingest of TDRB byte
//! streams over real recorded NFS workloads.
//!
//! The contract under test is the one `docs/FORMATS.md` specifies and the
//! pipeline promises: *how* the bytes arrive can never change *what* they
//! mean. The same TDRB bytes audited materialized and streamed — at any
//! read-buffer size, any worker count, any high-water mark — must produce
//! byte-identical verdicts and fleet summaries, and the streaming path must
//! never hold more than the configured number of sessions resident.

use replay::stream::ChunkReader;
use replay::CodecError;
use sanity_tdr::audit_pipeline::ingest::{self, BatchStream, IngestError};
use sanity_tdr::{audit_pipeline, compare, AuditConfig, AuditJob, Sanity};
use workloads::nfs;

/// One NFS service and a fleet of its recorded sessions; sessions whose id
/// is in `covert` get two packets delayed by ~20% of the IPD.
fn record_fleet(n: u64, covert: &[u64]) -> (Sanity, Vec<AuditJob>) {
    let files = nfs::make_files(6, 2048, 6144, 31);
    let sanity = Sanity::new(nfs::server_program(files.len() as i32)).with_files(files.clone());
    let jobs = (0..n)
        .map(|id| {
            let sched = nfs::client_schedule(&files, 200_000, 740_000, 500 + id);
            let is_covert = covert.contains(&id);
            let rec = sanity
                .record(id, |vm| {
                    for (at, pkt) in sched.packets {
                        vm.machine_mut().deliver_packet(at, pkt);
                    }
                    if is_covert {
                        vm.set_delay_model(Box::new(vm::ScheduledDelays::new(vec![
                            0, 150_000, 0, 0, 150_000, 0,
                        ])));
                    }
                })
                .expect("record");
            AuditJob {
                session_id: id,
                observed_ipds: compare::tx_ipds_cycles(&rec.tx),
                log: rec.log,
            }
        })
        .collect();
    (sanity, jobs)
}

#[test]
fn streamed_and_materialized_summaries_are_byte_identical() {
    let (sanity, jobs) = record_fleet(6, &[2, 5]);
    let bytes = ingest::encode_batch(&jobs);
    let cfg = AuditConfig {
        workers: 3,
        high_water: 4,
        ..AuditConfig::default()
    };

    // The materialized path: decode everything, then audit.
    let materialized = sanity.audit_batch(&ingest::decode_batch(&bytes).expect("decodes"), &cfg);
    assert_eq!(materialized.summary.flagged, vec![2, 5]);

    // The streamed path, with the transport splitting the bytes at every
    // kind of adversarial boundary: chunk == 1 puts a read boundary at
    // every byte (mid-varint, mid-frame, mid-CRC); the larger sizes hit
    // frame-straddling and aligned cases.
    for read_buf in [1usize, 7, 4096] {
        let report = sanity
            .audit_stream(ChunkReader::new(&bytes[..], read_buf), &cfg)
            .unwrap_or_else(|e| panic!("read buffer {read_buf}: {e}"));
        assert_eq!(
            report.verdicts, materialized.verdicts,
            "read buffer {read_buf}: verdicts must be byte-identical"
        );
        assert_eq!(
            report.summary, materialized.summary,
            "read buffer {read_buf}: summaries must be byte-identical"
        );
        assert!(
            report.peak_resident <= cfg.high_water,
            "read buffer {read_buf}: peak {} exceeds high-water {}",
            report.peak_resident,
            cfg.high_water
        );
    }
}

#[test]
fn streaming_respects_high_water_mark_below_batch_size() {
    let (sanity, jobs) = record_fleet(6, &[1]);
    let bytes = ingest::encode_batch(&jobs);
    for high_water in [1usize, 2, 3] {
        let cfg = AuditConfig {
            workers: 4,
            high_water,
            ..AuditConfig::default()
        };
        let report = sanity
            .audit_stream(&bytes[..], &cfg)
            .expect("stream audits");
        assert_eq!(report.summary.sessions, jobs.len() as u64);
        assert!(
            report.peak_resident <= high_water,
            "peak {} exceeds high-water {high_water}",
            report.peak_resident
        );
        // The bound was binding, not vacuous: more sessions streamed
        // through than were ever allowed to be resident.
        assert!(jobs.len() > high_water);
        assert_eq!(report.summary.flagged, vec![1]);
    }
}

#[test]
fn verdicts_independent_of_worker_count_and_high_water() {
    let (sanity, jobs) = record_fleet(5, &[3]);
    let bytes = ingest::encode_batch(&jobs);
    let base = AuditConfig::default();
    let reference = sanity
        .audit_stream(
            &bytes[..],
            &AuditConfig {
                workers: 1,
                high_water: 1,
                ..base
            },
        )
        .expect("serial stream");
    for (workers, high_water) in [(2, 2), (4, 8), (3, 5)] {
        let report = sanity
            .audit_stream(
                &bytes[..],
                &AuditConfig {
                    workers,
                    high_water,
                    ..base
                },
            )
            .expect("stream audits");
        assert_eq!(
            report.verdicts, reference.verdicts,
            "workers {workers}, high_water {high_water}"
        );
        assert_eq!(report.summary, reference.summary);
    }
}

#[test]
fn pull_based_ingest_decodes_real_fleet_lazily() {
    let (_, jobs) = record_fleet(4, &[]);
    let bytes = ingest::encode_batch(&jobs);
    let mut stream = BatchStream::new(&bytes[..]).expect("header");
    assert_eq!(stream.sessions_declared(), 4);
    let mut back = Vec::new();
    for item in &mut stream {
        back.push(item.expect("session decodes"));
    }
    assert_eq!(back, jobs, "streamed sessions equal the originals");
}

#[test]
fn truncated_stream_reports_the_failing_session_index() {
    let (sanity, jobs) = record_fleet(3, &[]);
    let bytes = ingest::encode_batch(&jobs);
    let cut = bytes.len() - 5; // inside the last session's log frame
    let err = sanity
        .audit_stream(&bytes[..cut], &AuditConfig::default())
        .expect_err("truncation must fail");
    assert_eq!(
        err,
        IngestError::BadSession {
            index: 2,
            cause: CodecError::Truncated
        }
    );
}

#[test]
fn corrupted_crc_reports_the_failing_session_index() {
    let (sanity, jobs) = record_fleet(3, &[]);
    let mut bytes = ingest::encode_batch(&jobs);
    let mid = bytes.len() / 2; // inside some session's body
    bytes[mid] ^= 0x20;
    let err = sanity
        .audit_stream(&bytes[..], &AuditConfig::default())
        .expect_err("corruption must fail");
    match err {
        IngestError::BadSession { index, cause } => {
            assert!(index < 3, "index {index} in range");
            assert!(
                matches!(
                    cause,
                    CodecError::BadChecksum { .. }
                        | CodecError::Truncated
                        | CodecError::BadMagic
                        | CodecError::LengthOverflow
                ),
                "corruption classified as data damage: {cause:?}"
            );
        }
        other => panic!("expected an indexed session error, got {other:?}"),
    }
}

#[test]
fn unknown_batch_version_rejected_before_any_decode() {
    let (sanity, jobs) = record_fleet(1, &[]);
    let mut bytes = ingest::encode_batch(&jobs);
    bytes[4] = 3; // version low byte
    let err = sanity
        .audit_stream(&bytes[..], &AuditConfig::default())
        .expect_err("future version must fail");
    assert_eq!(err, IngestError::UnsupportedVersion(3));
}

#[test]
fn zero_session_batch_streams_to_an_empty_summary() {
    let (sanity, _) = record_fleet(1, &[]);
    let bytes = ingest::encode_batch(&[]);
    let report = sanity
        .audit_stream(&bytes[..], &AuditConfig::default())
        .expect("empty batch streams");
    assert!(report.verdicts.is_empty());
    assert_eq!(report.summary.sessions, 0);
    assert_eq!(report.peak_resident, 0);
    // ...and the streaming summary still equals the materialized one.
    let materialized = audit_pipeline::audit_batch(
        &sanity.as_reference(),
        &ingest::decode_batch(&bytes).expect("decodes"),
        &AuditConfig::default(),
    );
    assert_eq!(report.summary, materialized.summary);
}
