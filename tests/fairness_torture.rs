//! Starvation torture suite for the multi-tenant daemon
//! (`audit_pipeline::net` + `service::serve_as_tenant`): one capped,
//! quota'd daemon under four seeded hostile peers — a flooder burning its
//! whole batch budget, a quota prober declaring over-size batches, a
//! slow-loris submitter trickling bytes, and a connect-churner — while an
//! honest tenant submits real work. The suite pins the ISSUE's fairness
//! contract:
//!
//! * the honest tenant's batches complete within a bounded factor of
//!   their isolated latency (no starvation behind hostile backlogs);
//! * its verdicts stay bit-identical to an in-process `audit_batch` of
//!   the same jobs — fairness must not perturb the audit;
//! * every refusal is typed (`ControlError::QuotaExceeded` in-band,
//!   connection-scoped `Busy` at the accept gate) — never a hang, never
//!   a panic, never a silent close;
//! * the per-tenant counters in the final stats snapshot match
//!   ground-truth tallies exactly, and the accept/shed/error accounting
//!   balances to the connection.
//!
//! CI runs this binary with `--test-threads=1` and uploads the snapshot
//! written to `results/FAIRNESS_stats.txt` as a build artifact.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};

use sanity_tdr::{
    serve_tcp_with, AuditConfig, BusyScope, Client, ControlError, ControlFrame, DaemonOptions,
    Sanity, TcpDaemon, TenantQuota,
};

use sanity_tdr::audit_pipeline::ingest;

#[path = "torture_common.rs"]
mod torture_common;
use torture_common::{echo_jobs, echo_sanity};

/// The quota every TCP tenant runs under in this suite.
const QUOTA: TenantQuota = TenantQuota {
    max_sessions: 8,
    max_batches: 8,
};

/// The daemon's connection cap.
const MAX_CONNS: usize = 6;

fn capped_daemon(sanity: &Sanity) -> TcpDaemon {
    let service = sanity
        .audit_service()
        .workers(2)
        .build()
        .expect("valid service configuration");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    serve_tcp_with(
        service,
        listener,
        DaemonOptions {
            max_conns: Some(MAX_CONNS),
            tenant_quota: Some(QUOTA),
            ..DaemonOptions::default()
        },
    )
    .expect("daemon starts")
}

/// Poll the daemon's `conn_active` gauge through `client` until it reads
/// `want` (serve threads observe connects/disconnects asynchronously).
fn wait_conn_active(client: &mut Client<TcpStream>, want: u64) {
    for _ in 0..1000 {
        if client
            .stats()
            .expect("stats round trip")
            .gauge("conn_active")
            == want
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("conn_active never reached {want}");
}

/// The one scenario the tentpole exists for: four hostile peers cannot
/// starve, perturb, or crash the honest tenant.
#[test]
fn hostile_fleet_cannot_starve_an_honest_tenant() {
    let sanity = echo_sanity();
    let cfg = AuditConfig {
        workers: 2,
        ..AuditConfig::default()
    };

    // Per-tenant job sets (distinct session ids → distinct verdicts, so a
    // cross-tenant mixup cannot cancel out in the comparisons below).
    let honest_jobs = echo_jobs(&sanity, 0..6);
    let flooder_jobs = echo_jobs(&sanity, 10..18); // 8 = max_sessions exactly
    let prober_jobs = echo_jobs(&sanity, 20..29); // 9 > max_sessions: refused
    let small_jobs = echo_jobs(&sanity, 30..32);

    let honest_bytes = ingest::encode_batch(&honest_jobs);
    let flooder_bytes = ingest::encode_batch(&flooder_jobs);
    let prober_bytes = ingest::encode_batch(&prober_jobs);
    let small_bytes = ingest::encode_batch(&small_jobs);

    // In-process ground truth for every batch shape submitted below.
    let honest_baseline = sanity.audit_batch(&honest_jobs, &cfg);
    let flooder_baseline = sanity.audit_batch(&flooder_jobs, &cfg);
    let small_baseline = sanity.audit_batch(&small_jobs, &cfg);

    // ---------------------------------------------------------------
    // Isolated latency: the honest tenant alone on an identical daemon.
    // ---------------------------------------------------------------
    let isolated_total = {
        let daemon = capped_daemon(&sanity);
        let mut client = Client::new(TcpStream::connect(daemon.local_addr()).expect("connect"));
        // One unmeasured warm-up batch so both measurements run against a
        // warm pool and page-hot code.
        client
            .submit_batch(900, honest_bytes.clone())
            .expect("warm-up batch")
            .result
            .expect("warm-up audits");
        let start = Instant::now();
        for m in 0..3u64 {
            let outcome = client
                .submit_batch(1000 + m, honest_bytes.clone())
                .expect("isolated batch");
            assert_eq!(outcome.verdicts, honest_baseline.verdicts);
            outcome.result.expect("isolated batch audits");
        }
        let total = start.elapsed();
        client.shutdown().expect("isolated client acks");
        let report = daemon.shutdown();
        report.service.shutdown();
        total
    };

    // ---------------------------------------------------------------
    // Phase A: the chaos daemon, four persistent tenants connected
    // serially so their tenant ids are deterministic (accept order):
    // honest = 1, flooder = 2, prober = 3, loris = 4.
    // ---------------------------------------------------------------
    let daemon = capped_daemon(&sanity);
    let addr = daemon.local_addr();

    let mut honest = Client::new(TcpStream::connect(addr).expect("connect"));
    honest.stats().expect("honest connection serves");
    let mut flooder = Client::new(TcpStream::connect(addr).expect("connect"));
    flooder.stats().expect("flooder connection serves");
    let mut prober = Client::new(TcpStream::connect(addr).expect("connect"));
    prober.stats().expect("prober connection serves");
    let loris_stream = TcpStream::connect(addr).expect("connect");
    wait_conn_active(&mut honest, 4);

    // ---------------------------------------------------------------
    // Phase B: all five peers run concurrently.
    // ---------------------------------------------------------------
    let honest_thread = {
        let bytes = honest_bytes.clone();
        let baseline: Vec<_> = honest_baseline.verdicts.clone();
        let summary = honest_baseline.summary.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            for m in 0..3u64 {
                let outcome = honest
                    .submit_batch(1000 + m, bytes.clone())
                    .expect("honest batch is served under load");
                assert_eq!(outcome.verdicts, baseline, "honest verdicts perturbed");
                for (wire, local) in outcome.verdicts.iter().zip(&baseline) {
                    assert_eq!(
                        wire.score.to_bits(),
                        local.score.to_bits(),
                        "honest scores must be bit-identical under load"
                    );
                }
                assert_eq!(
                    outcome.result.expect("honest batch audits").summary,
                    summary
                );
            }
            (honest, start.elapsed())
        })
    };

    let flooder_thread = {
        let bytes = flooder_bytes.clone();
        let baseline = flooder_baseline.verdicts.clone();
        std::thread::spawn(move || {
            // Burn the whole lifetime batch budget with full-size batches…
            for m in 0..QUOTA.max_batches {
                let outcome = flooder
                    .submit_batch(2000 + m, bytes.clone())
                    .expect("flooder batches within budget are served");
                assert_eq!(outcome.verdicts, baseline);
                outcome.result.expect("flooder batch audits");
            }
            // …then every further submission gets the typed refusal, and
            // the connection survives each one.
            for m in 0..3u64 {
                let err = flooder
                    .submit_batch(2100 + m, bytes.clone())
                    .expect_err("budget exhausted: submission refused");
                assert_eq!(
                    err,
                    ControlError::QuotaExceeded {
                        scope: BusyScope::QueuedBatches,
                        active: QUOTA.max_batches,
                        limit: QUOTA.max_batches,
                    }
                );
            }
            flooder.shutdown().expect("flooder still acks shutdown");
        })
    };

    let prober_thread = {
        let bytes = prober_bytes.clone();
        let small = small_bytes.clone();
        let baseline = small_baseline.verdicts.clone();
        std::thread::spawn(move || {
            // Oversize declarations are refused before any session is
            // decoded — and refusals consume no batch budget.
            for m in 0..5u64 {
                let err = prober
                    .submit_batch(3000 + m, bytes.clone())
                    .expect_err("oversize batch refused");
                assert_eq!(
                    err,
                    ControlError::QuotaExceeded {
                        scope: BusyScope::InFlightSessions,
                        active: prober_jobs_len(),
                        limit: QUOTA.max_sessions,
                    }
                );
            }
            // The connection survives five refusals: a conforming batch
            // is still served in full.
            let outcome = prober
                .submit_batch(3100, small)
                .expect("conforming batch after refusals");
            assert_eq!(outcome.verdicts, baseline);
            outcome.result.expect("prober's conforming batch audits");
            prober.shutdown().expect("prober acks shutdown");
        })
    };

    let loris_thread = {
        let small = small_bytes.clone();
        let baseline = small_baseline.verdicts.clone();
        let mut stream = loris_stream;
        std::thread::spawn(move || {
            // Trickle one conforming SubmitBatch a few bytes at a time —
            // a slow peer must tie up neither the accept loop nor the
            // worker pool while its frame dribbles in.
            let mut request = Vec::new();
            ControlFrame::SubmitBatch {
                batch_id: 4000,
                tdrb: small,
                reference: None,
            }
            .write_to(&mut request)
            .expect("encode");
            // Seeded trickle schedule: chunk sizes and pauses come from
            // the suite's RNG, so a pathological framing-dependent stall
            // reproduces from the seed.
            let mut rng = StdRng::seed_from_u64(0x7d5e_4a11);
            let mut at = 0usize;
            while at < request.len() {
                let len = rng.gen_range(1..=(request.len() / 32).max(2));
                let hi = (at + len).min(request.len());
                stream.write_all(&request[at..hi]).expect("trickle");
                at = hi;
                std::thread::sleep(Duration::from_micros(rng.gen_range(200..2_000)));
            }
            let mut verdicts = Vec::new();
            loop {
                match ControlFrame::read_from(&mut stream)
                    .expect("response decodes")
                    .expect("daemon is up")
                {
                    ControlFrame::Verdict { verdict, index, .. } => {
                        assert_eq!(index as usize, verdicts.len());
                        verdicts.push(verdict);
                    }
                    ControlFrame::Summary { .. } => break,
                    other => panic!("unexpected daemon frame: {other:?}"),
                }
            }
            assert_eq!(verdicts, baseline, "loris verdicts perturbed");
            ControlFrame::Shutdown
                .write_to(&mut stream)
                .expect("encode shutdown");
            match ControlFrame::read_from(&mut stream)
                .expect("ack decodes")
                .expect("daemon acks")
            {
                ControlFrame::ShutdownAck => {}
                other => panic!("unexpected daemon frame: {other:?}"),
            }
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest).expect("read to EOF");
            assert!(rest.is_empty(), "nothing after the ack");
        })
    };

    let churner_thread = {
        let small = small_bytes.clone();
        let baseline = small_baseline.verdicts.clone();
        std::thread::spawn(move || {
            // Serial connect → submit → shutdown churn with seeded pauses:
            // tenant ids 5..=7 (no other peer connects during phase B).
            let mut rng = StdRng::seed_from_u64(0x7d5e_c4e7);
            for k in 0..3u64 {
                std::thread::sleep(Duration::from_micros(rng.gen_range(100..3_000)));
                let mut client = Client::new(TcpStream::connect(addr).expect("churn connect"));
                let outcome = client
                    .submit_batch(5000 + k, small.clone())
                    .expect("churned batch is served");
                assert_eq!(outcome.verdicts, baseline);
                outcome.result.expect("churned batch audits");
                client.shutdown().expect("churned connection acks");
            }
        })
    };

    let (mut honest, chaos_total) = honest_thread.join().expect("honest thread");
    flooder_thread.join().expect("flooder thread");
    prober_thread.join().expect("prober thread");
    loris_thread.join().expect("loris thread");
    churner_thread.join().expect("churner thread");

    // No starvation: with per-tenant round-robin the honest tenant shares
    // the pool with the (at most) three other tenants that ever hold
    // queued work, so its three batches land within a small factor of
    // isolation. The absolute grace term absorbs OS-scheduler noise at
    // millisecond batch times; the factor is the invariant under test —
    // a FIFO queue puts the flooder's entire backlog ahead of the honest
    // tenant and blows well past it.
    let bound = isolated_total * 3 + Duration::from_millis(400);
    assert!(
        chaos_total <= bound,
        "honest tenant starved: {chaos_total:?} under load vs {isolated_total:?} isolated \
         (bound {bound:?})"
    );

    // ---------------------------------------------------------------
    // Phase C: fill the connection cap and probe the accept gate.
    // ---------------------------------------------------------------
    wait_conn_active(&mut honest, 1);
    let mut holders: Vec<_> = (0..MAX_CONNS - 1)
        .map(|_| Client::new(TcpStream::connect(addr).expect("holder connects")))
        .collect();
    for holder in &mut holders {
        holder.stats().expect("holder connection serves");
    }
    wait_conn_active(&mut honest, MAX_CONNS as u64);

    // Read-only probes (writing to an already-closed socket would RST the
    // connection and discard the buffered refusal): exactly one typed,
    // connection-scoped Busy frame, then EOF.
    for _ in 0..3 {
        let mut probe = TcpStream::connect(addr).expect("probe connects");
        let frame = ControlFrame::read_from(&mut probe)
            .expect("refusal decodes")
            .expect("daemon answers before closing");
        assert_eq!(
            frame,
            ControlFrame::Busy {
                batch_id: 0,
                scope: BusyScope::Connections,
                active: MAX_CONNS as u64,
                limit: MAX_CONNS as u64,
            }
        );
        let mut rest = Vec::new();
        probe.read_to_end(&mut rest).expect("read to EOF");
        assert!(rest.is_empty(), "nothing after the Busy frame");
    }

    for holder in holders {
        holder.shutdown().expect("holder acks");
    }
    honest.shutdown().expect("honest client acks");

    // ---------------------------------------------------------------
    // Final accounting: the snapshot matches ground-truth tallies.
    // ---------------------------------------------------------------
    let report = daemon.shutdown();

    // Connection ledger: 4 persistent + 3 churned + 5 holders accepted;
    // exactly the 3 probes shed; nothing errored, nothing lost.
    assert_eq!(report.connections_accepted, 12);
    assert_eq!(report.connection_errors, 0, "no peer ever errors");
    assert_eq!(report.connections_shed, 3);
    let snap = &report.snapshot;
    assert_eq!(snap.counter("conn_shed"), 3);

    // Per-tenant ground truth. Tenant ids follow accept order (phase A
    // connected serially; churn ran with no competing connects).
    let tallies: &[(u64, u64, u64)] = &[
        (1, 3 * 6, 0), // honest: 3 batches × 6 sessions, never refused
        (2, 8 * 8, 3), // flooder: full budget admitted, 3 refusals after
        (3, 2, 5),     // prober: 5 refusals, then one 2-session batch
        (4, 2, 0),     // loris: one trickled 2-session batch
        (5, 2, 0),     // churn #1
        (6, 2, 0),     // churn #2
        (7, 2, 0),     // churn #3
    ];
    for &(tenant, sessions, rejected) in tallies {
        assert_eq!(
            snap.counter(&format!("tenant_{tenant}_sessions")),
            sessions,
            "tenant {tenant} session tally"
        );
        assert_eq!(
            snap.counter(&format!("tenant_{tenant}_rejected")),
            rejected,
            "tenant {tenant} rejection tally"
        );
        assert_eq!(
            snap.gauge(&format!("tenant_{tenant}_queue_depth")),
            0,
            "tenant {tenant} queue drained"
        );
    }
    // The cap holders (tenants 8..=12) submitted nothing.
    for tenant in 8..=12u64 {
        assert_eq!(snap.counter(&format!("tenant_{tenant}_sessions")), 0);
        assert_eq!(snap.counter(&format!("tenant_{tenant}_rejected")), 0);
    }

    // Cross-checks against the aggregate counters.
    let sessions: u64 = tallies.iter().map(|&(_, s, _)| s).sum();
    let rejections: u64 = tallies.iter().map(|&(_, _, r)| r).sum();
    assert_eq!(snap.counter("sessions_audited"), sessions);
    assert_eq!(snap.counter("sessions_submitted"), sessions);
    assert_eq!(snap.counter("batches_completed"), 3 + 8 + 1 + 1 + 3);
    assert_eq!(snap.counter("quota_rejections"), rejections);
    assert_eq!(
        snap.counter("frames_out_busy"),
        rejections + report.connections_shed,
        "one Busy frame per in-band refusal plus one per shed connection"
    );
    assert_eq!(snap.counter("control_err_idle_timeout"), 0);

    // CI artifact: the full snapshot plus the latency measurement.
    let artifact = format!(
        "# fairness_torture final stats snapshot\n\
         # honest 3-batch latency: isolated {isolated_total:?}, under load {chaos_total:?} \
         (bound {bound:?})\n{}",
        snap.render()
    );
    std::fs::create_dir_all("../../results").expect("results dir");
    std::fs::write("../../results/FAIRNESS_stats.txt", artifact).expect("write stats artifact");

    report.service.shutdown();
}

/// The prober's declared session count (9 — one past `max_sessions`),
/// as a function so the refusal assertion can't drift from the fixture.
fn prober_jobs_len() -> u64 {
    9
}
