//! Differential determinism suite: the seeded corpus replayed through the
//! current interpreter/scheduler must match goldens recorded from the
//! implementation that existed before the dispatch/tick-scheduler rework.
//!
//! Every fingerprint is exact — cycle counts, instruction counts, wall-ps,
//! console output, per-packet IPDs, and the full verdict/summary structures
//! (floats compared via their shortest-roundtrip `Debug` rendering, which
//! is bit-faithful). Any change to opcode semantics, cost accounting, event
//! ordering, RNG draw order, or detector arithmetic fails here first.
//!
//! Regenerate with `UPDATE_GOLDENS=1 cargo test --test determinism_goldens`
//! — but only when a change is *supposed* to alter timing, and say so in
//! the commit.

use sanity_tdr::{AuditConfig, AuditJob, BatteryMode, DetectorBattery, Sanity};
use vm::{DispatchMode, VmConfig};
use workloads::corpus;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/goldens/determinism.txt"
);
const SEPARATOR: &str = "\n=== program ";

/// One corpus program's exact behavioural fingerprint.
fn fingerprint(k: u64) -> String {
    let prog = corpus::corpus_program(corpus::GOLDEN_CORPUS_SEED + k);
    let s = Sanity::new(prog);

    // Three training runs under distinct noise seeds give the battery a
    // non-degenerate clean distribution for this program.
    let training: Vec<Vec<u64>> = (0..3)
        .map(|t| {
            s.record(9_000 + k * 10 + t, |_| {})
                .expect("training record")
                .tx_ipds_cycles()
        })
        .collect();

    let rec = s.record(1_000 + k, |_| {}).expect("record");
    let rep = s.replay(&rec.log, 2_000 + k, |_| {}).expect("replay");

    let audited = s.with_battery(DetectorBattery::trained(&training));
    let job = AuditJob {
        session_id: k,
        log: rec.log.clone(),
        observed_ipds: rec.tx_ipds_cycles(),
    };
    let cfg = AuditConfig {
        workers: 2,
        battery: BatteryMode::Full,
        ..AuditConfig::default()
    };
    let report = audited.audit_batch(std::slice::from_ref(&job), &cfg);

    format!(
        "record: exit={:?} icount={} cycles={} wall_ps={} gc={}\n\
         record console={:?}\n\
         record ipds={:?}\n\
         replay: exit={:?} icount={} cycles={} wall_ps={}\n\
         replay console={:?}\n\
         replay ipds={:?}\n\
         verdicts={:?}\n\
         summary={:?}\n",
        rec.outcome.exit,
        rec.outcome.icount,
        rec.outcome.cycles,
        rec.outcome.wall_ps,
        rec.gc_runs,
        rec.outcome.console,
        rec.tx_ipds_cycles(),
        rep.outcome.exit,
        rep.outcome.icount,
        rep.outcome.cycles,
        rep.outcome.wall_ps,
        rep.outcome.console,
        rep.tx_ipds_cycles(),
        report.verdicts,
        report.summary,
    )
}

fn render_all() -> String {
    let mut out = String::from("determinism goldens v1\n");
    for k in 0..corpus::GOLDEN_CORPUS_SIZE as u64 {
        out.push_str(SEPARATOR);
        out.push_str(&format!("{k} ===\n"));
        out.push_str(&fingerprint(k));
    }
    out
}

/// The fused fast path is a host-side optimization only: record + replay
/// under `DispatchMode::Classic` must be bit-identical to the default.
#[test]
fn classic_and_fused_dispatch_agree() {
    for k in 0..corpus::GOLDEN_CORPUS_SIZE as u64 {
        let prog = corpus::corpus_program(corpus::GOLDEN_CORPUS_SEED + k);
        let runs: Vec<String> = [DispatchMode::Fused, DispatchMode::Classic]
            .iter()
            .map(|&dispatch| {
                let s = Sanity::new(prog.clone()).with_vm_config(VmConfig {
                    dispatch,
                    ..VmConfig::default()
                });
                let rec = s.record(1_000 + k, |_| {}).expect("record");
                let rep = s.replay(&rec.log, 2_000 + k, |_| {}).expect("replay");
                format!(
                    "{} {} {} {:?} {:?} | {} {} {:?}",
                    rec.outcome.icount,
                    rec.outcome.cycles,
                    rec.outcome.wall_ps,
                    rec.outcome.console,
                    rec.tx_ipds_cycles(),
                    rep.outcome.cycles,
                    rep.outcome.wall_ps,
                    rep.tx_ipds_cycles(),
                )
            })
            .collect();
        assert_eq!(runs[0], runs[1], "dispatch modes diverged on program {k}");
    }
}

#[test]
fn corpus_matches_pinned_goldens() {
    let actual = render_all();
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("mkdir goldens");
        std::fs::write(GOLDEN_PATH, &actual).expect("write goldens");
        eprintln!("goldens updated at {GOLDEN_PATH}");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("goldens missing — run once with UPDATE_GOLDENS=1");
    if expected != actual {
        // Diff per program so the failure names the culprit.
        let exp: Vec<&str> = expected.split(SEPARATOR).collect();
        let act: Vec<&str> = actual.split(SEPARATOR).collect();
        assert_eq!(
            exp.len(),
            act.len(),
            "golden program count changed (regenerate deliberately)"
        );
        for (e, a) in exp.iter().zip(act.iter()) {
            if e != a {
                for (le, la) in e.lines().zip(a.lines()) {
                    assert_eq!(le, la, "determinism fingerprint diverged");
                }
                assert_eq!(e, a, "determinism fingerprint diverged (line count)");
            }
        }
        panic!("goldens diverged"); // unreachable fallback
    }
}
