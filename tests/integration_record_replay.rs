//! Cross-crate integration: record → log → TDR replay → comparison.

use sanity_tdr::{compare, Sanity};
use workloads::{nfs, scimark::Kernel};

fn nfs_sanity(seed: u64) -> (Sanity, nfs::RequestSchedule) {
    let files = nfs::make_files(5, 2048, 6144, seed);
    let sched = nfs::client_schedule(&files, 200_000, 740_000, seed ^ 0xabc);
    let s = Sanity::new(nfs::server_program(sched.len() as i32)).with_files(files);
    (s, sched)
}

#[test]
fn nfs_record_replay_accuracy_within_paper_bound() {
    let (s, sched) = nfs_sanity(1);
    let packets = sched.packets.clone();
    let rec = s
        .record(1, move |vm| {
            for (at, pkt) in packets {
                vm.machine_mut().deliver_packet(at, pkt);
            }
        })
        .expect("record");
    let rep = s.replay(&rec.log, 77, |_| {}).expect("replay");

    // §6.4: runtime within 1%; all IPDs within the paper's 1.85% noise
    // floor, asserted here at ≤1.9%. The residual deviation is dominated
    // by bus arbitration jitter: each contended bus access picks up to
    // `BusParams::jitter_max` (6) extra cycles from a seed-dependent
    // stream, and play and replay run under different jitter seeds — the
    // one Table 1 noise source TDR deliberately does not eliminate, only
    // bounds (this trace measures ~1.0%; the long-NFS-sweep tail is
    // pinned at the 1.85% noise floor below).
    let rt_err = compare::relative_error(rec.outcome.cycles, rep.outcome.cycles);
    assert!(rt_err < 0.01, "runtime error {rt_err}");
    let c = compare::compare_ipds(
        &compare::tx_ipds_cycles(&rec.tx),
        &compare::tx_ipds_cycles(&rep.tx),
    );
    assert!(!c.length_mismatch);
    assert!(c.max_rel < 0.019, "max IPD deviation {}", c.max_rel);
}

#[test]
fn long_nfs_sweep_ipd_tail_stays_under_regression_bound() {
    // Regression pin for the replay-accuracy *tail*. The short trace above
    // measures ~1.0% and is pinned at 1.9%; longer NFS sweeps accumulate
    // more contended bus accesses and push the worst-case IPD deviation
    // higher. This test sweeps several long configurations and pins the
    // tail at ≤ 1.85% — the paper's own noise floor (§6.4) — so a
    // scheduler or bus-model change that silently widens it fails here
    // first. The sweeps currently measure ≤ ~1.22% worst-case (the bound
    // was 2.5% before the dispatch/scheduler overhaul was verified
    // bit-identical and the tail re-measured), leaving ~0.6 points of
    // headroom under the floor.
    let mut worst = 0.0f64;
    for t in 0..3u64 {
        let files = nfs::make_files(6, 2048, 6144, 70 + t);
        let sched = nfs::client_schedule(&files, 200_000, 740_000, 80 + t);
        let s = Sanity::new(nfs::server_program(sched.len() as i32)).with_files(files);
        let packets = sched.packets.clone();
        let rec = s
            .record(40 + t, move |vm| {
                for (at, pkt) in packets {
                    vm.machine_mut().deliver_packet(at, pkt);
                }
            })
            .expect("record");
        let rep = s.replay(&rec.log, 140 + t, |_| {}).expect("replay");
        let c = compare::compare_ipds(
            &compare::tx_ipds_cycles(&rec.tx),
            &compare::tx_ipds_cycles(&rep.tx),
        );
        assert!(!c.length_mismatch, "sweep {t}: IPD count diverged");
        eprintln!("sweep {t}: max_rel {}", c.max_rel);
        worst = worst.max(c.max_rel);
    }
    assert!(
        worst <= 0.0185,
        "long-sweep IPD tail regressed past the 1.85% noise floor: {worst}"
    );
}

#[test]
fn replay_reproduces_outputs_exactly() {
    let (s, sched) = nfs_sanity(2);
    let packets = sched.packets.clone();
    let rec = s
        .record(2, move |vm| {
            for (at, pkt) in packets {
                vm.machine_mut().deliver_packet(at, pkt);
            }
        })
        .expect("record");
    let rep = s.replay(&rec.log, 88, |_| {}).expect("replay");
    assert_eq!(rec.tx.len(), rep.tx.len());
    for (a, b) in rec.tx.iter().zip(rep.tx.iter()) {
        assert_eq!(a.data, b.data, "§6.5: replay produces exact copies");
    }
    assert_eq!(rec.outcome.icount, rep.outcome.icount);
}

#[test]
fn log_serializes_and_replays_from_json() {
    let (s, sched) = nfs_sanity(3);
    let packets = sched.packets.clone();
    let rec = s
        .record(3, move |vm| {
            for (at, pkt) in packets {
                vm.machine_mut().deliver_packet(at, pkt);
            }
        })
        .expect("record");
    let json = rec.log.to_json();
    let log = sanity_tdr::replay::EventLog::from_json(&json).expect("parse");
    let rep = s.replay(&log, 99, |_| {}).expect("replay from parsed log");
    assert_eq!(rep.outcome.icount, rec.outcome.icount);
}

#[test]
fn compute_workloads_record_replay_cleanly() {
    for k in [Kernel::Mc, Kernel::Lu] {
        let s = Sanity::new(k.program_small());
        let rec = s.record(5, |_| {}).expect("record");
        let rep = s.replay(&rec.log, 55, |_| {}).expect("replay");
        assert_eq!(rec.outcome.console, rep.outcome.console, "{:?}", k.label());
        let err = compare::relative_error(rec.outcome.cycles, rep.outcome.cycles);
        assert!(err < 0.01, "{}: {err}", k.label());
    }
}

#[test]
fn functional_baseline_diverges_tdr_does_not() {
    let s = Sanity::new(workloads::bootserve::bootserve_program(40, 10));
    // Space the arrivals well past the per-request compute time so the run
    // is wait-dominated: skipping those waits is exactly what makes the
    // functional baseline diverge grossly (Fig. 3).
    let rec = s
        .record(6, |vm| {
            for k in 0..10u64 {
                vm.machine_mut()
                    .deliver_packet(2_000_000 + k * 2_500_000, vec![k as u8; 48]);
            }
        })
        .expect("record");
    let tdr = s.replay(&rec.log, 7, |_| {}).expect("tdr");
    let functional = s.replay_functional(&rec.log, 8).expect("functional");

    let tdr_err = compare::relative_error(rec.outcome.cycles, tdr.outcome.cycles);
    let fun_err = compare::relative_error(rec.outcome.cycles, functional.outcome.cycles);
    assert!(tdr_err < 0.01, "TDR: {tdr_err}");
    assert!(fun_err > 0.10, "functional baseline diverges: {fun_err}");
    assert_eq!(
        functional.outcome.icount, rec.outcome.icount,
        "functional replay is still functionally correct"
    );
}
