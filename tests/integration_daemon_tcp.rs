//! Integration suite for the TCP daemon (`audit_pipeline::net`): a real
//! localhost round trip is pinned byte-identical to the in-memory duplex
//! path and to in-process submission, under 1 and 4 concurrent
//! connections; concurrent clients each get bit-identical verdicts;
//! slow-loris and mid-frame-stall connections are isolated; and
//! connection-level garbage never takes the daemon down.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::{rngs::StdRng, SeedableRng};
use sanity_tdr::audit_pipeline::{ingest, AuditVerdict, FleetSummary};
use sanity_tdr::{
    serve_tcp, serve_tcp_with, AuditConfig, AuditJob, Client, ControlFrame, DaemonOptions, Sanity,
    TcpDaemon,
};

#[path = "torture_common.rs"]
mod torture_common;
use torture_common::{echo_jobs, echo_sanity, mutate};

fn tcp_daemon(sanity: &Sanity, workers: usize, high_water: usize) -> TcpDaemon {
    let service = sanity
        .audit_service()
        .workers(workers)
        .high_water(high_water)
        .build()
        .expect("valid service configuration");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    serve_tcp(service, listener).expect("daemon starts")
}

/// Write `request` to a fresh connection, then read the response stream
/// to EOF (the daemon closes after answering `Shutdown` or erroring).
fn round_trip_raw(addr: SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read to EOF");
    response
}

/// Decode a full response stream: in-order verdicts, one summary, one
/// shutdown ack, nothing else.
fn decode_response(bytes: &[u8]) -> (Vec<AuditVerdict>, FleetSummary) {
    let mut src = bytes;
    let mut verdicts = Vec::new();
    let mut summary = None;
    let mut acked = false;
    while let Some(frame) = ControlFrame::read_from(&mut src).expect("response decodes") {
        match frame {
            ControlFrame::Verdict { index, verdict, .. } => {
                assert_eq!(index as usize, verdicts.len(), "verdicts in order");
                assert!(summary.is_none(), "no verdicts after the summary");
                verdicts.push(verdict);
            }
            ControlFrame::Summary { summary: s, .. } => {
                assert!(summary.replace(s).is_none(), "exactly one summary");
            }
            ControlFrame::ShutdownAck => acked = true,
            other => panic!("unexpected daemon frame: {other:?}"),
        }
    }
    assert!(acked, "shutdown acknowledged");
    (verdicts, summary.expect("summary present"))
}

// ---------------------------------------------------------------------------
// The acceptance pin: TCP == duplex == in-process, at 1 and 4 connections
// ---------------------------------------------------------------------------

/// `high_water == 1` makes the streamed peak residency deterministic
/// (exactly one session resident at a time), so the full response byte
/// stream — Summary frame included — is comparable across transports.
#[test]
fn tcp_round_trip_is_byte_identical_to_duplex_and_in_process() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..4);
    let bytes = ingest::encode_batch(&jobs);
    let expected = sanity.audit_batch(
        &jobs,
        &AuditConfig {
            workers: 2,
            ..AuditConfig::default()
        },
    );

    let mut request = Vec::new();
    ControlFrame::SubmitBatch {
        batch_id: 7,
        tdrb: bytes,
        reference: None,
    }
    .write_to(&mut request)
    .expect("encode");
    ControlFrame::Shutdown
        .write_to(&mut request)
        .expect("encode");

    // Reference bytes: the same exchange over the in-memory duplex.
    let duplex_bytes = {
        let service = sanity
            .audit_service()
            .workers(2)
            .high_water(1)
            .build()
            .expect("valid service configuration");
        let (client_end, server_end) = sanity_tdr::audit_pipeline::service::duplex();
        let daemon = std::thread::spawn(move || {
            let outcome = service.serve(&server_end, &server_end);
            service.shutdown();
            outcome
        });
        (&client_end).write_all(&request).expect("send request");
        let mut response = Vec::new();
        (&client_end)
            .read_to_end(&mut response)
            .expect("read to EOF");
        daemon
            .join()
            .expect("daemon thread")
            .expect("serve loop exits cleanly");
        response
    };

    // One TCP connection: the exact same bytes come back.
    let daemon = tcp_daemon(&sanity, 2, 1);
    let addr = daemon.local_addr();
    let tcp_bytes = round_trip_raw(addr, &request);
    assert_eq!(
        tcp_bytes, duplex_bytes,
        "TCP response stream must be byte-identical to the duplex path"
    );

    // ...and those bytes carry verdicts bit-identical to the in-process
    // audit of the same jobs.
    let (verdicts, summary) = decode_response(&tcp_bytes);
    assert_eq!(verdicts.len(), expected.verdicts.len());
    for (wire, local) in verdicts.iter().zip(&expected.verdicts) {
        assert_eq!(wire, local);
        assert_eq!(wire.score.to_bits(), local.score.to_bits());
    }
    assert_eq!(summary, expected.summary);

    // Four concurrent connections: every connection's response stream is
    // byte-identical to the single-connection (and duplex) bytes.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let request = request.clone();
            std::thread::spawn(move || round_trip_raw(addr, &request))
        })
        .collect();
    for handle in clients {
        let response = handle.join().expect("client thread");
        assert_eq!(
            response, duplex_bytes,
            "every concurrent connection sees identical bytes"
        );
    }

    let report = daemon.shutdown();
    assert_eq!(report.connections_accepted, 5);
    assert_eq!(report.connection_errors, 0);
    assert_eq!(report.connections_shed, 0, "no cap, nothing shed");
    assert_eq!(
        report.snapshot.counter("conn_reaped"),
        report.connections_accepted,
        "thread ledger unbalanced: every connection thread must be joined exactly once"
    );
    report.service.shutdown();
}

// ---------------------------------------------------------------------------
// Concurrent-client stress + graceful drain
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clients_get_bit_identical_verdicts_and_shutdown_drains() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..6);
    let cfg = AuditConfig {
        workers: 2,
        ..AuditConfig::default()
    };
    // Three distinct batches; every client submits all three.
    let batches: Vec<Vec<AuditJob>> = (0..3).map(|b| jobs[b * 2..b * 2 + 2].to_vec()).collect();
    let baselines: Vec<_> = batches
        .iter()
        .map(|b| sanity.audit_batch(b, &cfg))
        .collect();
    let batch_bytes: Vec<Vec<u8>> = batches.iter().map(|b| ingest::encode_batch(b)).collect();

    let daemon = tcp_daemon(&sanity, 2, 8);
    let addr = daemon.local_addr();

    const CLIENTS: usize = 4;
    let clients: Vec<_> = (0..CLIENTS as u64)
        .map(|c| {
            let batch_bytes = batch_bytes.clone();
            let baselines: Vec<_> = baselines
                .iter()
                .map(|r| (r.verdicts.clone(), r.summary.clone()))
                .collect();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut client = Client::new(stream);
                for (m, bytes) in batch_bytes.iter().enumerate() {
                    let outcome = client
                        .submit_batch(c * 100 + m as u64, bytes.clone())
                        .expect("protocol clean");
                    assert_eq!(outcome.batch_id, c * 100 + m as u64);
                    let summary = outcome.result.expect("batch audits");
                    let (expected_verdicts, expected_summary) = &baselines[m];
                    assert_eq!(&outcome.verdicts, expected_verdicts);
                    for (wire, local) in outcome.verdicts.iter().zip(expected_verdicts) {
                        assert_eq!(wire.score.to_bits(), local.score.to_bits());
                    }
                    assert_eq!(&summary.summary, expected_summary);
                }
                client.shutdown().expect("connection shutdown acked");
            })
        })
        .collect();
    for handle in clients {
        handle.join().expect("client thread");
    }

    // Graceful drain: start shutting down while a client is mid-exchange.
    // The serve loop flushes verdicts as workers produce them, so the
    // first-verdict callback fires while the remaining sessions of this
    // full-fleet batch are still being audited — shutdown() must let the
    // connection finish in full regardless.
    let full_baseline = sanity.audit_batch(&jobs, &cfg);
    let full_bytes = ingest::encode_batch(&jobs);
    let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
    let (late_verdicts, late_summary) = (
        full_baseline.verdicts.clone(),
        full_baseline.summary.clone(),
    );
    let late = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut client = Client::new(stream);
        let outcome = client
            .submit_batch_with(999, full_bytes, |index, _| {
                if index == 0 {
                    let _ = started_tx.send(());
                }
            })
            .expect("protocol clean through the drain");
        assert_eq!(outcome.verdicts, late_verdicts);
        assert_eq!(outcome.result.expect("batch audits").summary, late_summary);
        client.shutdown().expect("ack during drain");
    });
    started_rx
        .recv()
        .expect("late client got its first verdict");
    let report = daemon.shutdown(); // blocks until the late connection ends
    late.join().expect("late client thread");

    assert_eq!(report.connections_accepted, (CLIENTS + 1) as u64);
    assert_eq!(report.connection_errors, 0);
    assert_eq!(report.connections_shed, 0, "no cap, nothing shed");
    assert_eq!(
        report.snapshot.counter("conn_reaped"),
        report.connections_accepted,
        "thread ledger unbalanced: every connection thread must be joined exactly once"
    );
    assert_eq!(
        report.service.sessions_audited(),
        (CLIENTS * 3 * 2 + jobs.len()) as u64,
        "every submitted session audited exactly once"
    );
    report.service.shutdown();
}

// ---------------------------------------------------------------------------
// Stats plane: polling is read-only, timeouts reap stalled peers
// ---------------------------------------------------------------------------

/// A stats-polling client hammering `StatsRequest` while four clients
/// submit batches concurrently: every submitted batch still returns
/// bit-identical verdicts and summaries (observation must not perturb the
/// audit), the polled counters are monotonic, and the final snapshot
/// equals ground truth.
#[test]
fn stats_polling_client_perturbs_neither_verdicts_nor_summaries() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..6);
    let cfg = AuditConfig {
        workers: 2,
        ..AuditConfig::default()
    };
    let batches: Vec<Vec<AuditJob>> = (0..3).map(|b| jobs[b * 2..b * 2 + 2].to_vec()).collect();
    let baselines: Vec<_> = batches
        .iter()
        .map(|b| sanity.audit_batch(b, &cfg))
        .collect();
    let batch_bytes: Vec<Vec<u8>> = batches.iter().map(|b| ingest::encode_batch(b)).collect();

    let daemon = tcp_daemon(&sanity, 2, 8);
    let addr = daemon.local_addr();

    let done = Arc::new(AtomicBool::new(false));
    let poller = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("poller connects");
            let mut client = Client::new(stream);
            let mut polls = 0u64;
            let mut last_audited = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = client.stats().expect("stats round trip");
                let audited = snap.counter("sessions_audited");
                assert!(
                    audited >= last_audited,
                    "counters are monotonic: {audited} < {last_audited}"
                );
                last_audited = audited;
                assert_eq!(snap.counter("conn_errors"), 0);
                assert!(snap.gauge("conn_active") >= 1, "the poller itself");
                polls += 1;
            }
            client.shutdown().expect("poller shutdown acked");
            polls
        })
    };

    const CLIENTS: usize = 4;
    let clients: Vec<_> = (0..CLIENTS as u64)
        .map(|c| {
            let batch_bytes = batch_bytes.clone();
            let baselines: Vec<_> = baselines
                .iter()
                .map(|r| (r.verdicts.clone(), r.summary.clone()))
                .collect();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut client = Client::new(stream);
                for (m, bytes) in batch_bytes.iter().enumerate() {
                    let outcome = client
                        .submit_batch(c * 100 + m as u64, bytes.clone())
                        .expect("protocol clean");
                    let summary = outcome.result.expect("batch audits");
                    let (expected_verdicts, expected_summary) = &baselines[m];
                    assert_eq!(&outcome.verdicts, expected_verdicts);
                    for (wire, local) in outcome.verdicts.iter().zip(expected_verdicts) {
                        assert_eq!(wire.score.to_bits(), local.score.to_bits());
                    }
                    assert_eq!(&summary.summary, expected_summary);
                }
                client.shutdown().expect("connection shutdown acked");
            })
        })
        .collect();
    for handle in clients {
        handle.join().expect("client thread");
    }
    done.store(true, Ordering::Relaxed);
    let polls = poller.join().expect("poller thread");
    assert!(polls > 0, "the poller actually polled");

    let report = daemon.shutdown();
    assert_eq!(report.connections_accepted, (CLIENTS + 1) as u64);
    assert_eq!(report.connection_errors, 0);
    assert_eq!(report.connections_shed, 0, "no cap, nothing shed");
    assert_eq!(
        report.snapshot.counter("conn_reaped"),
        report.connections_accepted,
        "thread ledger unbalanced: every connection thread must be joined exactly once"
    );
    let sessions = (CLIENTS * 3 * 2) as u64;
    assert_eq!(report.service.sessions_audited(), sessions);
    assert_eq!(report.snapshot.counter("sessions_audited"), sessions);
    assert_eq!(report.snapshot.counter("sessions_submitted"), sessions);
    assert_eq!(
        report.snapshot.counter("batches_completed"),
        (CLIENTS * 3) as u64
    );
    assert_eq!(
        report.snapshot.counter("frames_in_stats_request"),
        polls,
        "one Stats answer per poll"
    );
    report.service.shutdown();
}

/// `DaemonOptions::idle_timeout` reaps a slow-loris opener: the stalled
/// connection ends with the typed `IdleTimeout` error (counted by
/// `conn_idle_timeout`), its thread is freed, and healthy clients on the
/// same daemon are untouched.
#[test]
fn idle_timeout_reaps_stalled_connections_with_a_typed_error() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..2);
    let bytes = ingest::encode_batch(&jobs);
    let service = sanity
        .audit_service()
        .workers(2)
        .build()
        .expect("valid service configuration");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let daemon = serve_tcp_with(
        service,
        listener,
        DaemonOptions {
            idle_timeout: Some(Duration::from_millis(250)),
            ..DaemonOptions::default()
        },
    )
    .expect("daemon starts");
    let addr = daemon.local_addr();

    // A slow-loris opener: two bytes of a length prefix, then silence.
    // Without the timeout this parks a connection thread forever (the
    // default-off behavior the other tests pin); with it, the daemon
    // reaps the connection — observed here as EOF/reset on our end.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled.write_all(&[0x10, 0x00]).expect("partial prefix");
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("guard timeout");
    let mut buf = [0u8; 1];
    let reaped = matches!(stalled.read(&mut buf), Ok(0) | Err(_));
    assert!(reaped, "daemon reaped the stalled connection");

    // A healthy client is unaffected and sees the typed tally.
    let mut client = Client::new(TcpStream::connect(addr).expect("connect"));
    let outcome = client.submit_batch(1, bytes).expect("protocol clean");
    outcome.result.expect("batch audits");
    let snap = client.stats().expect("stats over TCP");
    assert_eq!(snap.counter("conn_idle_timeout"), 1);
    assert_eq!(snap.counter("control_err_idle_timeout"), 1);
    client.shutdown().expect("ack");

    let report = daemon.shutdown();
    assert_eq!(report.connections_accepted, 2);
    assert_eq!(
        report.connection_errors, 1,
        "the stalled connection, and only it"
    );
    assert_eq!(report.connections_shed, 0, "no cap, nothing shed");
    assert_eq!(
        report.snapshot.counter("conn_reaped"),
        report.connections_accepted,
        "thread ledger unbalanced: every connection thread must be joined exactly once"
    );
    assert_eq!(report.snapshot.counter("conn_idle_timeout"), 1);
    report.service.shutdown();
}

// ---------------------------------------------------------------------------
// Slow-loris / partial writes / mid-frame stalls
// ---------------------------------------------------------------------------

#[test]
fn slow_loris_and_mid_frame_stalls_are_isolated_per_connection() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..3);
    let bytes = ingest::encode_batch(&jobs);
    let cfg = AuditConfig {
        workers: 2,
        ..AuditConfig::default()
    };
    let expected = sanity.audit_batch(&jobs, &cfg);

    // Tight residency bound: a leaked worker-residency slot would wedge
    // every later streamed submission, so the post-stall submissions below
    // double as the leak detector.
    let daemon = tcp_daemon(&sanity, 2, 1);
    let addr = daemon.local_addr();

    let mut request = Vec::new();
    ControlFrame::SubmitBatch {
        batch_id: 1,
        tdrb: bytes.clone(),
        reference: None,
    }
    .write_to(&mut request)
    .expect("encode");

    // Connection 1 stalls mid-frame: two bytes of a length prefix, then
    // nothing — a classic slow-loris opener.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled.write_all(&request[..2]).expect("partial prefix");

    // Connection 2 dribbles the whole request one byte per write while
    // connection 1 is stalled; it must be served in full regardless.
    let mut dribble = TcpStream::connect(addr).expect("connect");
    for byte in &request {
        dribble.write_all(std::slice::from_ref(byte)).expect("drip");
    }
    let mut verdicts = Vec::new();
    let summary = loop {
        match ControlFrame::read_from(&mut dribble)
            .expect("response decodes")
            .expect("daemon is up")
        {
            ControlFrame::Verdict { verdict, index, .. } => {
                assert_eq!(index as usize, verdicts.len());
                verdicts.push(verdict);
            }
            ControlFrame::Summary { summary, .. } => break summary,
            other => panic!("unexpected daemon frame: {other:?}"),
        }
    };
    assert_eq!(verdicts, expected.verdicts);
    assert_eq!(summary, expected.summary);
    drop(dribble); // clean EOF at a frame boundary: not an error

    // The stalled peer vanishes mid-frame: its connection errors (typed
    // Truncated on the daemon side), everyone else keeps being served.
    drop(stalled);
    let follow_up = TcpStream::connect(addr).expect("connect");
    let mut client = Client::new(follow_up);
    let outcome = client
        .submit_batch(2, bytes.clone())
        .expect("protocol clean");
    assert_eq!(outcome.verdicts, expected.verdicts);
    assert_eq!(
        outcome.result.expect("batch audits").summary,
        expected.summary
    );
    client.shutdown().expect("ack");

    let report = daemon.shutdown();
    assert_eq!(report.connections_accepted, 3);
    assert_eq!(
        report.connection_errors, 1,
        "exactly the stalled connection errored"
    );
    assert_eq!(report.connections_shed, 0, "no cap, nothing shed");
    assert_eq!(
        report.snapshot.counter("conn_reaped"),
        report.connections_accepted,
        "thread ledger unbalanced: every connection thread must be joined exactly once"
    );

    // No residency slot leaked: the warm service still streams a full
    // batch under the same high-water bound of 1.
    let stream = report
        .service
        .submit_stream(std::io::Cursor::new(bytes))
        .expect("header decodes")
        .wait_stream()
        .expect("stream audits after the stall");
    assert_eq!(stream.summary, expected.summary);
    assert_eq!(stream.peak_resident, 1);
    report.service.shutdown();
}

// ---------------------------------------------------------------------------
// Connection-level garbage
// ---------------------------------------------------------------------------

/// Seeded mutations of a request stream thrown at raw TCP connections:
/// each connection's outcome (in-band service vs typed connection error)
/// must match `AuditService::serve` over the same bytes in memory, and
/// the daemon must keep serving throughout.
#[test]
fn connection_level_garbage_never_kills_the_daemon() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..3);
    let bytes = ingest::encode_batch(&jobs);
    let cfg = AuditConfig {
        workers: 2,
        ..AuditConfig::default()
    };
    let expected = sanity.audit_batch(&jobs, &cfg);

    let mut request = Vec::new();
    ControlFrame::SubmitBatch {
        batch_id: 3,
        tdrb: bytes.clone(),
        reference: None,
    }
    .write_to(&mut request)
    .expect("encode");
    ControlFrame::Shutdown
        .write_to(&mut request)
        .expect("encode");

    // The in-memory oracle: what `serve` does with each mutated stream.
    let oracle = sanity
        .audit_service()
        .workers(1)
        .build()
        .expect("valid service configuration");

    let daemon = tcp_daemon(&sanity, 2, 8);
    let addr = daemon.local_addr();
    let mut expected_errors = 0u64;
    const CONNS: u64 = 20;
    let mut rng = StdRng::seed_from_u64(0x07d5_e7c9);
    for _seed in 0..CONNS {
        let mutated = mutate(&mut rng, &request);
        if oracle.serve(&mutated[..], std::io::sink()).is_err() {
            expected_errors += 1;
        }
        let mut conn = TcpStream::connect(addr).expect("connect");
        // The daemon may error and close mid-write; that only this
        // connection cares about.
        let _ = conn.write_all(&mutated);
        let _ = conn.shutdown(Shutdown::Write); // deliver EOF like the oracle
        let mut sink = Vec::new();
        let _ = conn.read_to_end(&mut sink); // drain until the daemon closes
    }
    oracle.shutdown();

    // Still serving, verdicts still bit-identical.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut client = Client::new(stream);
    let outcome = client.submit_batch(42, bytes).expect("protocol clean");
    assert_eq!(outcome.verdicts, expected.verdicts);
    assert_eq!(
        outcome.result.expect("batch audits").summary,
        expected.summary
    );
    client.shutdown().expect("ack");

    let report = daemon.shutdown();
    assert_eq!(report.connections_accepted, CONNS + 1);
    assert_eq!(
        report.connection_errors, expected_errors,
        "every connection's outcome matches the in-memory serve oracle"
    );
    assert_eq!(report.connections_shed, 0, "no cap, nothing shed");
    assert_eq!(
        report.snapshot.counter("conn_reaped"),
        report.connections_accepted,
        "thread ledger unbalanced: every connection thread must be joined exactly once"
    );
    report.service.shutdown();
}

// ---------------------------------------------------------------------------
// Connection-cap shedding
// ---------------------------------------------------------------------------

/// `DaemonOptions::max_conns`: connections past the cap are shed with one
/// connection-scoped `Busy` frame and a close — typed on the client side
/// as `ControlError::Busy` — and the accounting is exact: every TCP
/// connect the daemon answered is either accepted or shed, never both,
/// and shed connections are not errors.
#[test]
fn over_cap_connections_are_shed_with_a_typed_busy_frame() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..2);
    let bytes = ingest::encode_batch(&jobs);
    let service = sanity
        .audit_service()
        .workers(2)
        .build()
        .expect("valid service configuration");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let daemon = serve_tcp_with(
        service,
        listener,
        DaemonOptions {
            max_conns: Some(2),
            ..DaemonOptions::default()
        },
    )
    .expect("daemon starts");
    let addr = daemon.local_addr();

    // Fill the cap with two held connections, each proven live (a full
    // stats round trip means its serve thread is running and counted).
    let mut held: Vec<_> = (0..2)
        .map(|_| Client::new(TcpStream::connect(addr).expect("connect")))
        .collect();
    for client in &mut held {
        client.stats().expect("held connection serves");
    }

    // Three probes decode the refusal off the raw socket: exactly one
    // Busy frame — connection-scoped, batch_id 0 — then EOF. The probes
    // deliberately write nothing: bytes arriving at a socket the daemon
    // already closed would RST the connection and discard the buffered
    // refusal (kernel semantics, not daemon behavior).
    for _ in 0..3 {
        let mut probe = TcpStream::connect(addr).expect("connect");
        let frame = ControlFrame::read_from(&mut probe)
            .expect("refusal decodes")
            .expect("daemon answers before closing");
        assert_eq!(
            frame,
            ControlFrame::Busy {
                batch_id: 0,
                scope: sanity_tdr::BusyScope::Connections,
                active: 2,
                limit: 2,
            }
        );
        let mut rest = Vec::new();
        probe.read_to_end(&mut rest).expect("read to EOF");
        assert!(rest.is_empty(), "nothing after the Busy frame");
    }

    // Freeing a slot re-opens admission: after the held connections shut
    // down, a new client is served in full. The serve threads observe the
    // shutdown asynchronously and admission rechecks on every accept, so
    // probe first — a shed connection hears the daemon speak first (the
    // refusal), an admitted one hears silence (the daemon awaits a
    // request) — and retry until admitted.
    for client in held {
        client.shutdown().expect("held connection acks");
    }
    let outcome = loop {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("probe timeout");
        let mut first = [0u8; 1];
        match stream.peek(&mut first) {
            Ok(_) => {
                // Shed again: confirm the refusal, give the serve threads
                // a moment, retry.
                let frame = ControlFrame::read_from(&mut stream)
                    .expect("refusal decodes")
                    .expect("daemon answers before closing");
                assert!(matches!(
                    frame,
                    ControlFrame::Busy {
                        batch_id: 0,
                        scope: sanity_tdr::BusyScope::Connections,
                        ..
                    }
                ));
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Admitted: the daemon is waiting for our first request.
                stream.set_read_timeout(None).expect("clear probe timeout");
                let mut client = Client::new(stream);
                let outcome = client
                    .submit_batch(9, bytes.clone())
                    .expect("protocol clean after the cap drains");
                client.shutdown().expect("ack");
                break outcome;
            }
            Err(e) => panic!("unexpected probe error while the cap drains: {e}"),
        }
    };
    outcome.result.expect("batch audits after the cap drains");

    let report = daemon.shutdown();
    // Exact accounting: 2 held + 1 final success accepted; 3 probes plus
    // any Busy-refused retries shed; nothing errored, nothing lost.
    assert_eq!(report.connections_accepted, 3);
    assert_eq!(
        report.connection_errors, 0,
        "shed connections are not errors"
    );
    assert!(report.connections_shed >= 3);
    // Shed connections never spawn a serve thread, so the thread ledger
    // balances against *accepted* connections only.
    assert_eq!(
        report.snapshot.counter("conn_reaped"),
        report.connections_accepted,
        "thread ledger unbalanced: every connection thread must be joined exactly once"
    );
    assert_eq!(
        report.snapshot.counter("conn_shed"),
        report.connections_shed
    );
    assert_eq!(
        report.snapshot.counter("frames_out_busy"),
        report.connections_shed,
        "one Busy frame per shed connection"
    );
    report.service.shutdown();
}

// ---------------------------------------------------------------------------
// Thread-ledger hygiene: finished connections are reaped without new accepts
// ---------------------------------------------------------------------------

/// Regression: a daemon that stops receiving connects must not hold a
/// handle for every connection it ever served until the next accept.
/// Each exiting connection thread reaps its finished predecessors, so
/// after N sequential connections end, at most the last one to finish
/// stays unreaped (a thread cannot join itself) — observable on the live
/// `conn_reaped` counter with zero further accepts.
#[test]
fn idle_daemon_reaps_finished_connection_threads_without_new_accepts() {
    const CONNS: u64 = 4;
    let sanity = echo_sanity();
    let daemon = tcp_daemon(&sanity, 2, 1);
    let addr = daemon.local_addr();

    for _ in 0..CONNS {
        let client = Client::new(TcpStream::connect(addr).expect("connect"));
        client.shutdown().expect("shutdown ack");
    }

    // The serve threads finish asynchronously after the Shutdown acks;
    // each one's exit-path reap joins every predecessor that already
    // finished. Poll the live counter — no connects happen here.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let reaped = daemon.service().metrics_snapshot().counter("conn_reaped");
        assert!(reaped <= CONNS, "a thread was joined twice");
        if reaped >= CONNS - 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "idle daemon kept {} of {CONNS} finished connection threads unreaped",
            CONNS - reaped
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let report = daemon.shutdown();
    assert_eq!(report.connections_accepted, CONNS);
    assert_eq!(
        report.snapshot.counter("conn_reaped"),
        CONNS,
        "shutdown joins the remainder exactly once"
    );
    report.service.shutdown();
}
