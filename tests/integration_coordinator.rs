//! Integration: the coordinator (`audit_pipeline::coord`) end to end.
//!
//! A coordinator over N backend daemons must be *invisible* to clients:
//! the unchanged TDRC protocol in, per-session verdicts and a
//! [`FleetSummary`] byte-identical to a single-daemon audit out —
//! including when a backend dies mid-batch and its shard is retried on a
//! survivor, and including the registry (`PutReference` fan-out) and
//! battery (`PutBattery` fan-out) control planes.

use std::net::{TcpListener, TcpStream};

use sanity_tdr::audit_pipeline::{ingest, FleetSummary};
use sanity_tdr::{
    serve_coordinator, serve_tcp, AckStatus, AuditConfig, AuditJob, Client, ControlError,
    ControlFrame, DetectorBattery, Sanity, TcpDaemon,
};

#[path = "torture_common.rs"]
mod torture_common;
use torture_common::{echo_jobs, echo_sanity, echo_sanity_with};

fn backend(sanity: &Sanity, workers: usize) -> TcpDaemon {
    let service = sanity
        .audit_service()
        .workers(workers)
        .build()
        .expect("valid service configuration");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    serve_tcp(service, listener).expect("backend starts")
}

fn cfg() -> AuditConfig {
    AuditConfig {
        workers: 2,
        ..AuditConfig::default()
    }
}

/// Byte-identity for the merged summary: encode both through the same
/// pinned wire path with the topology-dependent `Summary`-frame fields
/// (workers, peak residency) held constant, and compare raw frames.
fn summary_bytes(summary: &FleetSummary) -> Vec<u8> {
    ControlFrame::Summary {
        batch_id: 0,
        workers: 0,
        peak_resident: 0,
        summary: summary.clone(),
    }
    .encode()
}

/// A scripted backend that dies mid-batch: it accepts the coordinator's
/// dial, then drops the connection the moment the first frame arrives —
/// the coordinator observes a typed mid-exchange disconnect, exactly as
/// if the daemon process was killed after the shard was submitted.
/// Returns the address to route to.
fn dying_backend() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            std::thread::spawn(move || {
                // Read exactly one frame, answer nothing, hang up.
                let _ = ControlFrame::read_from(&mut stream);
            });
        }
    });
    addr
}

// ---------------------------------------------------------------------------
// The tentpole pin: coordinator == single daemon, bit for bit
// ---------------------------------------------------------------------------

/// Two backends behind a coordinator serve a client that cannot tell the
/// difference: every verdict and the merged fleet summary are
/// bit-identical to the in-process single-audit baseline, and the
/// routing counters account for every session.
#[test]
fn coordinator_merge_is_byte_identical_to_a_single_daemon_audit() {
    const BATCHES: u64 = 2;
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..10);
    let expected = sanity.audit_batch(&jobs, &cfg());
    let tdrb = ingest::encode_batch(&jobs);

    let backends: Vec<TcpDaemon> = (0..2).map(|_| backend(&sanity, 2)).collect();
    let addrs: Vec<String> = backends
        .iter()
        .map(|b| b.local_addr().to_string())
        .collect();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let coordinator = serve_coordinator(listener, addrs).expect("coordinator starts");

    let stream = TcpStream::connect(coordinator.local_addr()).expect("connect");
    let mut client = Client::new(stream);
    for b in 0..BATCHES {
        let outcome = client
            .submit_batch(b, tdrb.clone())
            .expect("batch completes");
        let summary = outcome.result.expect("audits");
        assert_eq!(outcome.verdicts.len(), expected.verdicts.len());
        for (wire, local) in outcome.verdicts.iter().zip(&expected.verdicts) {
            assert_eq!(
                wire, local,
                "batch {b}: verdict diverged through the coordinator"
            );
            assert_eq!(
                wire.score.to_bits(),
                local.score.to_bits(),
                "batch {b}: score bits diverged"
            );
        }
        assert_eq!(
            summary_bytes(&summary.summary),
            summary_bytes(&expected.summary),
            "batch {b}: merged FleetSummary is not byte-identical"
        );
    }

    // The Stats plane serves the coordinator's own routing counters.
    let snap = client.stats().expect("stats over the coordinator");
    assert_eq!(snap.counter("coord_batches_routed"), BATCHES);
    assert_eq!(snap.counter("coord_sessions_routed"), 10 * BATCHES);
    assert_eq!(snap.counter("coord_retries"), 0);
    assert_eq!(snap.counter("coord_backend_failures"), 0);
    // session_id mod 2 puts the five even ids on backend 0, five odd on 1.
    for i in 0..2 {
        assert_eq!(
            snap.counter(&format!("coord_backend_{i}_sessions")),
            5 * BATCHES,
            "uneven shard routing"
        );
        assert_eq!(snap.counter(&format!("coord_backend_{i}_batches")), BATCHES);
    }
    assert_eq!(snap.gauge("conn_active"), 1);

    client.shutdown().expect("shutdown ack");
    let report = coordinator.shutdown();
    assert_eq!(report.connections_accepted, 1);
    assert_eq!(report.connection_errors, 0);
    assert_eq!(
        report.snapshot.counter("conn_reaped"),
        1,
        "coordinator thread ledger unbalanced"
    );

    // Each backend audited exactly its shards, and drained clean — no
    // residency slots leak through the routing layer.
    for b in backends {
        let report = b.shutdown();
        assert_eq!(report.snapshot.counter("sessions_audited"), 5 * BATCHES);
        assert_eq!(report.snapshot.gauge("queue_depth"), 0);
        assert_eq!(report.snapshot.gauge("in_flight_jobs"), 0);
        report.service.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Partial-failure torture: a backend dies mid-batch
// ---------------------------------------------------------------------------

/// Kill one backend mid-batch (it drops the connection after reading the
/// shard submission): the coordinator marks it dead, retries the whole
/// shard on the survivor, and the client still receives every verdict
/// and a fleet summary bit-identical to the single-daemon audit. The
/// connection keeps serving afterwards, and no worker-residency slot
/// leaks on the survivor.
#[test]
fn backend_death_mid_batch_is_retried_on_a_survivor_bit_identically() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..8);
    let expected = sanity.audit_batch(&jobs, &cfg());
    let tdrb = ingest::encode_batch(&jobs);

    let survivor = backend(&sanity, 2);
    // Backend 0 dies on first contact; even session ids shard to it.
    let dying = dying_backend();
    let addrs = vec![dying.to_string(), survivor.local_addr().to_string()];
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let coordinator = serve_coordinator(listener, addrs).expect("coordinator starts");

    let stream = TcpStream::connect(coordinator.local_addr()).expect("connect");
    let mut client = Client::new(stream);
    for b in 0..2u64 {
        let outcome = client
            .submit_batch(b, tdrb.clone())
            .expect("batch completes despite the dead backend");
        let summary = outcome.result.expect("audits");
        assert_eq!(outcome.verdicts.len(), expected.verdicts.len());
        for (wire, local) in outcome.verdicts.iter().zip(&expected.verdicts) {
            assert_eq!(wire, local, "batch {b}: verdict diverged after shard retry");
        }
        assert_eq!(
            summary_bytes(&summary.summary),
            summary_bytes(&expected.summary),
            "batch {b}: merged summary diverged after shard retry"
        );
    }

    // The death and the retry are visible — and typed — in the counters:
    // backend 0 failed, its shard was retried, the survivor served all.
    let snap = client.stats().expect("stats over the coordinator");
    assert!(snap.counter("coord_backend_failures") >= 1);
    assert!(snap.counter("coord_backend_0_failures") >= 1);
    assert!(
        snap.counter("coord_retries") >= 2,
        "each batch's orphaned shard is one retry, got {}",
        snap.counter("coord_retries")
    );
    assert_eq!(
        snap.counter("coord_backend_1_batches"),
        4,
        "2 shards + 2 retried shards"
    );
    assert_eq!(snap.counter("coord_backend_1_sessions"), 16);

    client.shutdown().expect("shutdown ack");
    coordinator.shutdown();

    // The survivor audited every session of both batches and drained
    // clean: no queue or residency slot leaked from the retried shards.
    let report = survivor.shutdown();
    assert_eq!(report.snapshot.counter("sessions_audited"), 16);
    assert_eq!(report.snapshot.gauge("queue_depth"), 0);
    assert_eq!(report.snapshot.gauge("in_flight_jobs"), 0);
    report.service.shutdown();
}

/// With every backend dead the coordinator answers the batch with an
/// in-band `Error` frame naming the dead backend — the connection (and
/// the Stats plane) keep serving, exactly like a daemon refusing one
/// batch.
#[test]
fn all_backends_dead_surfaces_an_in_band_error_and_keeps_serving() {
    // An address nothing listens on: bind, capture, drop.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let coordinator = serve_coordinator(listener, vec![dead_addr.clone()]).expect("starts");

    let sanity = echo_sanity();
    let tdrb = ingest::encode_batch(&echo_jobs(&sanity, 0..2));
    let stream = TcpStream::connect(coordinator.local_addr()).expect("connect");
    let mut client = Client::new(stream);

    let outcome = client.submit_batch(1, tdrb).expect("answered in-band");
    let message = outcome.result.expect_err("no backend can audit");
    assert!(
        message.contains(&dead_addr) && message.contains("no survivor"),
        "error must name the dead backend: {message}"
    );
    assert!(outcome.verdicts.is_empty());

    // Reference puts are refused typed, not dropped.
    let put = client
        .put_reference(3, sanity_tdr::jbc::container::seal(sanity.program()))
        .expect("answered in-band");
    assert!(
        matches!(&put.status, AckStatus::Rejected(msg) if msg.contains("no live backends")),
        "got {:?}",
        put.status
    );

    // Still serving: the Stats plane answers and the shutdown handshake
    // completes on the same connection.
    let snap = client.stats().expect("stats still served");
    assert_eq!(snap.counter("coord_batch_errors"), 1);
    client.shutdown().expect("shutdown ack");
    coordinator.shutdown();
}

// ---------------------------------------------------------------------------
// Control-plane fan-out: references and batteries
// ---------------------------------------------------------------------------

/// `PutReference` through the coordinator lands the container on every
/// backend (resident bytes sum across the fleet), v2 submits against the
/// returned id shard and merge bit-identically, a re-put reports
/// `AlreadyResident` only because *all* backends already hold it, and an
/// unregistered id surfaces as the same typed `UnknownReference` a
/// single daemon raises.
#[test]
fn put_reference_fans_out_to_every_backend_and_v2_submits_merge() {
    let host = echo_sanity();
    let registered = echo_sanity_with(5);
    let tdrp = sanity_tdr::jbc::container::seal(registered.program());
    let id = sanity_tdr::jbc::container::reference_id(registered.program());
    // Five-round sessions for the five-round program (the shared helper
    // delivers only three packets).
    let record = |ids: std::ops::Range<u64>| -> Vec<AuditJob> {
        ids.map(|sid| {
            let rec = registered
                .record(700 + sid, move |vm| {
                    for k in 0..5u64 {
                        let data = vec![(9 + k) as u8 ^ sid as u8; 48];
                        vm.machine_mut().deliver_packet(100_000 + k * 400_000, data);
                    }
                })
                .expect("record echo session");
            AuditJob {
                session_id: sid,
                observed_ipds: rec.tx_ipds_cycles(),
                log: rec.log,
            }
        })
        .collect()
    };
    let jobs: Vec<AuditJob> = record(0..6);
    let expected = registered.audit_batch(&jobs, &cfg());
    let tdrb = ingest::encode_batch(&jobs);

    let per_backend_bytes = {
        let probe = sanity_tdr::ReferenceRegistry::new(u64::MAX);
        probe.load(&tdrp).expect("probe admits").resident_bytes
    };

    let backends: Vec<TcpDaemon> = (0..2).map(|_| backend(&host, 2)).collect();
    let addrs: Vec<String> = backends
        .iter()
        .map(|b| b.local_addr().to_string())
        .collect();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let coordinator = serve_coordinator(listener, addrs).expect("coordinator starts");

    let stream = TcpStream::connect(coordinator.local_addr()).expect("connect");
    let mut client = Client::new(stream);

    let put = client.put_reference(1, tdrp.clone()).expect("put fans out");
    assert_eq!(put.reference, id);
    assert_eq!(put.status, AckStatus::Loaded);
    assert_eq!(
        put.resident_bytes,
        2 * per_backend_bytes,
        "resident bytes must sum across the fleet"
    );

    let again = client.put_reference(2, tdrp.clone()).expect("re-put");
    assert_eq!(
        again.status,
        AckStatus::AlreadyResident,
        "every backend already holds it"
    );

    let outcome = client.submit_batch_for(7, tdrb, id).expect("v2 batch");
    let summary = outcome.result.expect("audits");
    for (wire, local) in outcome.verdicts.iter().zip(&expected.verdicts) {
        assert_eq!(wire, local, "registered-reference verdict diverged");
    }
    assert_eq!(
        summary_bytes(&summary.summary),
        summary_bytes(&expected.summary)
    );

    // An id nobody registered: the same typed error a daemon raises.
    let bogus = sanity_tdr::jbc::container::reference_id(host.program());
    let tdrb2 = ingest::encode_batch(&record(0..2));
    match client.submit_batch_for(8, tdrb2, bogus) {
        Err(ControlError::UnknownReference(got)) => assert_eq!(got, bogus),
        other => panic!("expected a typed UnknownReference, got {other:?}"),
    }

    client.shutdown().expect("shutdown ack");
    coordinator.shutdown();
    for b in backends {
        let report = b.shutdown();
        assert_eq!(report.snapshot.counter("registry_loads"), 1);
        assert_eq!(report.snapshot.gauge("registry_references"), 1);
        report.service.shutdown();
    }
}

/// `PutBattery` through the coordinator: one retrain publishes one
/// generation fleet-wide (the ack reports the *minimum* generation — the
/// floor every backend reached), and rejections are uniform: an
/// untrained battery, or a TDR-only fleet, refuse everywhere.
#[test]
fn put_battery_fans_out_with_a_fleet_generation_floor() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..4);
    let clean: Vec<Vec<u64>> = jobs.iter().map(|j| j.observed_ipds.clone()).collect();
    let battery = DetectorBattery::trained(&clean);
    let json = battery.to_json();

    // Battery-armed fleet: install lands everywhere, generation floor 1,
    // then 2 on the second publish.
    let armed: Vec<TcpDaemon> = (0..2)
        .map(|_| {
            let service = sanity
                .clone()
                .with_battery(battery.clone())
                .audit_service()
                .workers(2)
                .battery(sanity_tdr::BatteryMode::Full)
                .build()
                .expect("valid configuration");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            serve_tcp(service, listener).expect("backend starts")
        })
        .collect();
    let addrs: Vec<String> = armed.iter().map(|b| b.local_addr().to_string()).collect();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let coordinator = serve_coordinator(listener, addrs).expect("coordinator starts");

    let stream = TcpStream::connect(coordinator.local_addr()).expect("connect");
    let mut client = Client::new(stream);
    let first = client.put_battery(1, json.clone()).expect("fans out");
    assert_eq!(first.status, AckStatus::Loaded);
    assert_eq!(first.generation, 1, "fresh fleet: both backends at gen 1");
    let second = client.put_battery(2, json.clone()).expect("fans out");
    assert_eq!(second.generation, 2, "fleet floor advances together");

    // An untrained battery is refused fleet-wide, typed.
    let untrained = DetectorBattery::new().to_json();
    let refused = client.put_battery(3, untrained).expect("answered in-band");
    assert!(
        matches!(&refused.status, AckStatus::Rejected(msg) if msg.contains("untrained")),
        "got {:?}",
        refused.status
    );

    client.shutdown().expect("shutdown ack");
    coordinator.shutdown();
    for b in armed {
        b.shutdown().service.shutdown();
    }

    // A TDR-only fleet refuses installs: scoring it could never apply
    // would otherwise hide a fleet misconfiguration.
    let tdr_only = backend(&sanity, 2);
    let addr = tdr_only.local_addr().to_string();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let coordinator = serve_coordinator(listener, vec![addr]).expect("starts");
    let stream = TcpStream::connect(coordinator.local_addr()).expect("connect");
    let mut client = Client::new(stream);
    let refused = client.put_battery(4, json).expect("answered in-band");
    assert!(
        matches!(&refused.status, AckStatus::Rejected(msg) if msg.contains("battery")),
        "got {:?}",
        refused.status
    );
    client.shutdown().expect("shutdown ack");
    coordinator.shutdown();
    tdr_only.shutdown().service.shutdown();
}
