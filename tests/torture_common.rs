//! Helpers shared by the protocol torture suites
//! (`protocol_torture.rs`, `integration_daemon_tcp.rs`): the seeded
//! byte-stream mutator and the cheap echo fixture. Each test binary pulls
//! this in with `#[path = "torture_common.rs"] mod torture_common;`, so
//! the two suites can never drift apart on what "a mutation" means.

#![allow(dead_code)] // each test binary uses a subset

use rand::{rngs::StdRng, Rng};
use sanity_tdr::{AuditJob, Sanity};

/// One seeded mutation of `base`: bit flips, truncation, length-prefix /
/// length-field inflation, duplicated frames, interleaved chunks, or a
/// random byte-span rewrite. Deterministic per RNG state, so every
/// failure reproduces from its seed.
pub fn mutate(rng: &mut StdRng, base: &[u8]) -> Vec<u8> {
    let mut out = base.to_vec();
    match rng.gen_range(0u32..6) {
        // Flip 1–4 random bits anywhere (length prefix, header, body, CRC).
        0 => {
            for _ in 0..rng.gen_range(1usize..=4) {
                let at = rng.gen_range(0..out.len());
                out[at] ^= 1 << rng.gen_range(0u32..8);
            }
        }
        // Truncate strictly inside the stream.
        1 => {
            let at = rng.gen_range(0..out.len());
            out.truncate(at);
        }
        // Inflate 4 bytes at a random offset with a huge little-endian
        // u32 — when it lands on a length prefix this declares far more
        // bytes than exist (or than any bound allows).
        2 => {
            if out.len() >= 4 {
                let at = rng.gen_range(0..=out.len() - 4);
                let huge: u32 = rng.gen_range(1u32 << 20..=u32::MAX);
                out[at..at + 4].copy_from_slice(&huge.to_le_bytes());
            }
        }
        // Duplicate a prefix onto the end (repeated / trailing frames).
        3 => {
            let upto = rng.gen_range(0..=out.len());
            let dup = out[..upto].to_vec();
            out.extend_from_slice(&dup);
        }
        // Interleave: splice a chunk of the stream into a random position.
        4 => {
            let lo = rng.gen_range(0..out.len());
            let hi = rng.gen_range(lo..=out.len());
            let chunk = out[lo..hi].to_vec();
            let at = rng.gen_range(0..=out.len());
            let tail = out.split_off(at);
            out.extend_from_slice(&chunk);
            out.extend_from_slice(&tail);
        }
        // Rewrite a random span with random bytes.
        _ => {
            let lo = rng.gen_range(0..out.len());
            let hi = rng.gen_range(lo..=out.len().min(lo + 64));
            for slot in &mut out[lo..hi] {
                *slot = rng.gen_range(0u32..256) as u8;
            }
        }
    }
    out
}

/// A cheap echo reference (three request/response rounds): real
/// replayable sessions without NFS-scale recording cost.
pub fn echo_sanity() -> Sanity {
    echo_sanity_with(3)
}

/// [`echo_sanity`] with a configurable round count (IPDs per session =
/// rounds − 1): the one definition every suite shares, so fixtures
/// cannot drift.
pub fn echo_sanity_with(rounds: i32) -> Sanity {
    use sanity_tdr::jbc::hll::{dsl::*, HTy, Module};
    use sanity_tdr::jbc::ElemTy;
    let mut m = Module::new("Echo");
    m.native("wait_packet", &[], None);
    m.native("net_recv", &[HTy::Arr(ElemTy::I8)], Some(HTy::I32));
    m.native("net_send", &[HTy::Arr(ElemTy::I8), HTy::I32], None);
    m.func(fn_void(
        "main",
        vec![],
        vec![
            let_("buf", newarr(ElemTy::I8, i(256))),
            let_("done", i(0)),
            while_(
                lt(var("done"), i(rounds)),
                vec![
                    expr(native("wait_packet", vec![])),
                    let_("len", native("net_recv", vec![var("buf")])),
                    if_(
                        gt(var("len"), i(0)),
                        vec![
                            expr(native("net_send", vec![var("buf"), var("len")])),
                            set("done", add(var("done"), i(1))),
                        ],
                        vec![],
                    ),
                ],
            ),
        ],
    ));
    Sanity::new(m.compile().expect("compile echo program"))
}

/// Record one clean echo session per id.
pub fn echo_jobs(sanity: &Sanity, ids: std::ops::Range<u64>) -> Vec<AuditJob> {
    ids.map(|id| {
        let rec = sanity
            .record(700 + id, move |vm| {
                for k in 0..3u64 {
                    let data = vec![(9 + k) as u8 ^ id as u8; 48];
                    vm.machine_mut().deliver_packet(100_000 + k * 400_000, data);
                }
            })
            .expect("record echo session");
        AuditJob {
            session_id: id,
            observed_ipds: rec.tx_ipds_cycles(),
            log: rec.log,
        }
    })
    .collect()
}
