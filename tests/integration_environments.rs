//! Cross-crate integration: environment noise ordering (Fig. 2 / Fig. 6).

use std::sync::Arc;

use machine::{Environment, Machine, MachineConfig, Seeds};
use netsim::stats;
use sanity_tdr::Engine;
use sim_core::CostModel;
use vm::{Vm, VmConfig};
use workloads::{microbench, scimark::Kernel};

fn spread(env: Environment, program: &Arc<jbc::Program>, runs: usize) -> f64 {
    let times: Vec<f64> = (0..runs)
        .map(|r| {
            let machine = Machine::new(MachineConfig::host(env), Seeds::from_run(300 + r as u64));
            let cfg = VmConfig {
                cost: CostModel::oracle_interpreter(),
                ..VmConfig::default()
            };
            let mut vm = Vm::new(Arc::clone(program), machine, cfg).expect("load");
            vm.machine_mut().start_run();
            vm.run().expect("run").wall_ps as f64
        })
        .collect();
    stats::relative_spread(&times)
}

#[test]
fn fig2_ordering_noisy_to_quiet() {
    let p = Arc::new(microbench::zero_array_program(128 * 1024, 1));
    let noisy = spread(Environment::UserNoisy, &p, 10);
    let quiet = spread(Environment::UserQuiet, &p, 10);
    let kernel_quiet = spread(Environment::KernelQuiet, &p, 10);
    assert!(
        noisy > 5.0 * quiet,
        "noisy {noisy} ≫ quiet {quiet} (paper: up to ~189% vs a few %)"
    );
    assert!(
        quiet > kernel_quiet,
        "quiet {quiet} > kernel-quiet {kernel_quiet}"
    );
}

#[test]
fn fig6_sanity_is_an_order_quieter_than_clean() {
    let p = Arc::new(Kernel::Sor.program_small());
    let clean: Vec<f64> = (0..8u64)
        .map(|r| {
            Engine::OracleInt(Environment::UserQuiet)
                .run_program(&p, 600 + r)
                .expect("run")
                .wall_ps as f64
        })
        .collect();
    let sanity: Vec<f64> = (0..8u64)
        .map(|r| {
            Engine::Sanity
                .run_program(&p, 600 + r)
                .expect("run")
                .wall_ps as f64
        })
        .collect();
    let clean_spread = stats::relative_spread(&clean);
    let sanity_spread = stats::relative_spread(&sanity);
    assert!(
        sanity_spread < clean_spread / 2.0,
        "Sanity {sanity_spread} ≪ clean {clean_spread}"
    );
    assert!(
        sanity_spread < 0.0125,
        "paper: 0.08%–1.22%: {sanity_spread}"
    );
}

#[test]
fn functional_determinism_holds_in_every_environment() {
    let p = Arc::new(Kernel::Mc.program_small());
    let mut consoles = Vec::new();
    for env in Environment::all() {
        let machine = Machine::new(MachineConfig::host(env), Seeds::from_run(1));
        let mut vm = Vm::new(Arc::clone(&p), machine, VmConfig::default()).expect("load");
        vm.machine_mut().start_run();
        let out = vm.run().expect("run");
        consoles.push(out.console);
    }
    for w in consoles.windows(2) {
        assert_eq!(w[0], w[1], "noise never changes results, only timing");
    }
}
