//! Protocol torture suite: seeded random corruption of every wire format.
//!
//! Takes pinned-good TDRC control frames, TDRL frame streams, and TDRB
//! batches, applies ~1k seeded random mutations — bit flips, truncations,
//! length-prefix inflation, duplicated and interleaved frames, byte-span
//! rewrites — and requires that **every** mutation either decodes to
//! something self-consistent (re-encode → re-decode identical) or fails
//! with a *typed* error. No mutation may panic, hang, or (for the daemon)
//! end the serve loop: a daemon handed a corrupted embedded batch answers
//! with an in-band `Error` frame and keeps serving.
//!
//! The vendored `rand` is deterministic per seed, so every failure here
//! reproduces exactly; the panic message names the corpus and seed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::{rngs::StdRng, SeedableRng};
use sanity_tdr::audit_pipeline::service::duplex;
use sanity_tdr::audit_pipeline::{ingest, AuditVerdict, BatchStream, FleetSummary};
use sanity_tdr::replay::codec::write_frame;
use sanity_tdr::replay::{EventLog, PacketRecord, SessionStream};
use sanity_tdr::{AuditConfig, AuditJob, Client, ControlFrame, MetricsSnapshot};

#[path = "torture_common.rs"]
mod torture_common;
use torture_common::{echo_jobs, echo_sanity, mutate};

// ---------------------------------------------------------------------------
// Good corpora
// ---------------------------------------------------------------------------

/// A small synthetic event log (structurally valid; never replayed by the
/// decode-level torture, so contents only need to round-trip).
fn sample_log(salt: u64) -> EventLog {
    EventLog {
        packets: vec![
            PacketRecord {
                icount: 1_000 + salt,
                avail_at: 52_000,
                wire_at: 50_000,
                data: vec![salt as u8; 48],
            },
            PacketRecord {
                icount: 9_500 + salt,
                avail_at: 410_000,
                wire_at: 400_000,
                data: (0..64).collect(),
            },
        ],
        values: vec![1_000_000, 1_000_450 + salt, 999_999],
        final_icount: 123_456 + salt,
        final_cycles: 987_654 + salt,
        final_wall_ps: 7_777_777 + salt as u128,
    }
}

/// Concatenated TDRL frames.
fn tdrl_corpus() -> Vec<u8> {
    let mut buf = Vec::new();
    for salt in 0..3 {
        write_frame(&mut buf, &sample_log(salt));
    }
    buf
}

/// One TDRB batch of synthetic sessions.
fn tdrb_corpus() -> Vec<u8> {
    let jobs: Vec<AuditJob> = (0..3u64)
        .map(|id| AuditJob {
            session_id: id,
            observed_ipds: vec![350_000 + id, 360_000, 355_500],
            log: sample_log(id),
        })
        .collect();
    ingest::encode_batch(&jobs)
}

/// Concatenated TDRC frames of every kind.
fn tdrc_corpus() -> Vec<u8> {
    let verdict = AuditVerdict {
        session_id: 7,
        score: 0.015,
        flagged: false,
        tx_packets: 3,
        replayed_cycles: 1_000,
        detector_scores: [("Sanity".to_string(), 0.015), ("KS test".to_string(), -0.5)]
            .into_iter()
            .collect(),
        error: None,
    };
    let summary = FleetSummary::from_verdicts(std::slice::from_ref(&verdict));
    let frames = [
        ControlFrame::SubmitBatch {
            batch_id: 1,
            tdrb: tdrb_corpus(),
            reference: None,
        },
        ControlFrame::Verdict {
            batch_id: 1,
            index: 0,
            verdict,
        },
        ControlFrame::Summary {
            batch_id: 1,
            workers: 2,
            peak_resident: 4,
            summary,
        },
        ControlFrame::Error {
            batch_id: 2,
            message: "session 1 failed to decode".to_string(),
        },
        ControlFrame::Shutdown,
        ControlFrame::ShutdownAck,
    ];
    let mut buf = Vec::new();
    for frame in &frames {
        buf.extend_from_slice(&frame.encode());
    }
    buf
}

/// Concatenated stats-plane frames: a `StatsRequest` plus `Stats` frames
/// carrying a populated snapshot (counters, gauges, float gauges with
/// non-finite-adjacent values, a histogram) and an empty one.
fn stats_corpus() -> Vec<u8> {
    let mut populated = MetricsSnapshot::default();
    populated
        .counters
        .insert("sessions_audited".to_string(), 48);
    populated.counters.insert("bytes_in".to_string(), u64::MAX);
    populated.gauges.insert("conn_active".to_string(), 4);
    populated
        .float_gauges
        .insert("uptime_seconds".to_string(), 12.5);
    populated
        .float_gauges
        .insert("retrain_drift_mean".to_string(), -0.0);
    populated.histograms.insert(
        "verdict_latency_us".to_string(),
        sanity_tdr::audit_pipeline::obs::HistogramSnapshot {
            edges: vec![50.0, 100.0, 250.0],
            counts: vec![1, 2, 3, 4],
            total: 10,
            sum: 1_234.5,
        },
    );
    let frames = [
        ControlFrame::StatsRequest,
        ControlFrame::Stats {
            snapshot: populated,
        },
        ControlFrame::Stats {
            snapshot: MetricsSnapshot::default(),
        },
    ];
    let mut buf = Vec::new();
    for frame in &frames {
        buf.extend_from_slice(&frame.encode());
    }
    buf
}

// ---------------------------------------------------------------------------
// The mutation sweep (the mutator itself lives in `torture_common`)
// ---------------------------------------------------------------------------

/// Run `decode` over a seeded mutation sweep; any panic is reported with
/// the corpus name and seed so it reproduces deterministically.
fn sweep(corpus_name: &str, base: &[u8], mutations: usize, decode: impl Fn(&[u8])) {
    for seed in 0..mutations as u64 {
        let mut rng = StdRng::seed_from_u64(0x7d5e_0000 + seed);
        let mutated = mutate(&mut rng, base);
        let outcome = catch_unwind(AssertUnwindSafe(|| decode(&mutated)));
        assert!(
            outcome.is_ok(),
            "{corpus_name} seed {seed}: decoder panicked on a {}-byte mutation",
            mutated.len()
        );
    }
}

// ---------------------------------------------------------------------------
// Decode-level torture: typed errors or self-consistent decodes, never a
// panic
// ---------------------------------------------------------------------------

#[test]
fn tdrc_survives_a_thousand_seeded_mutations() {
    let base = tdrc_corpus();
    sweep("TDRC", &base, 350, |bytes| {
        let mut src = bytes;
        loop {
            match ControlFrame::read_from(&mut src) {
                Ok(None) => break, // clean end of stream
                Ok(Some(frame)) => {
                    // A decode that survives corruption must be
                    // self-consistent: re-encode → re-decode identical.
                    let re = frame.encode();
                    let back = ControlFrame::read_from(&mut &re[..])
                        .expect("re-encoded frame decodes")
                        .expect("one frame");
                    assert_eq!(back, frame);
                }
                Err(_typed) => break, // a typed ControlError, by type
            }
        }
    });
}

/// The stats plane under the same contract as every other TDRC frame:
/// ~100 seeded mutations of pinned-good `StatsRequest`/`Stats` bytes each
/// either fail with a typed `ControlError` or decode to something
/// self-consistent (re-encode → re-decode identical) — never a panic,
/// never a hang, never an unbounded allocation from a forged count.
#[test]
fn stats_frames_survive_a_hundred_seeded_mutations() {
    let base = stats_corpus();
    sweep("TDRC-stats", &base, 100, |bytes| {
        let mut src = bytes;
        loop {
            match ControlFrame::read_from(&mut src) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    let re = frame.encode();
                    let back = ControlFrame::read_from(&mut &re[..])
                        .expect("re-encoded frame decodes")
                        .expect("one frame");
                    assert_eq!(back, frame);
                }
                Err(_typed) => break,
            }
        }
    });
}

/// The governance plane under the same contract: ~100 seeded mutations of
/// pinned-good `Busy` frames — every scope, boundary batch ids and limits
/// — each either fail with a typed `ControlError` (corruption, unknown
/// scope bytes → `BadScope`, truncation) or decode to something
/// self-consistent. A forged refusal must never panic or hang a client.
#[test]
fn busy_frames_survive_a_hundred_seeded_mutations() {
    use sanity_tdr::BusyScope;
    let frames = [
        // The FORMATS.md §5.6 worked example: a connection-level refusal.
        ControlFrame::Busy {
            batch_id: 0,
            scope: BusyScope::Connections,
            active: 4,
            limit: 4,
        },
        ControlFrame::Busy {
            batch_id: 300,
            scope: BusyScope::QueuedBatches,
            active: 8,
            limit: 8,
        },
        ControlFrame::Busy {
            batch_id: u64::MAX,
            scope: BusyScope::InFlightSessions,
            active: u64::MAX,
            limit: 1,
        },
    ];
    let mut base = Vec::new();
    for frame in &frames {
        base.extend_from_slice(&frame.encode());
    }
    sweep("TDRC-busy", &base, 100, |bytes| {
        let mut src = bytes;
        loop {
            match ControlFrame::read_from(&mut src) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    let re = frame.encode();
                    let back = ControlFrame::read_from(&mut &re[..])
                        .expect("re-encoded frame decodes")
                        .expect("one frame");
                    assert_eq!(back, frame);
                }
                Err(_typed) => break,
            }
        }
    });
}

/// The TDRP reference container under the same contract: ~100 seeded
/// mutations of a pinned-good sealed container each fail with a typed
/// [`ContainerError`](sanity_tdr::jbc::ContainerError) (CRC, digest,
/// magic, truncation, forged lengths) or open to the *same* program —
/// the container is digest-addressed and canonical-encoding-checked, so
/// a mutation that survives `open` by construction changed nothing that
/// matters. Never a panic, never an unbounded allocation.
#[test]
fn tdrp_containers_survive_a_hundred_seeded_mutations() {
    use sanity_tdr::jbc::container;
    let sanity = echo_sanity();
    let program = sanity.program();
    let base = container::seal(program);
    let want_id = container::reference_id(program);
    sweep("TDRP", &base, 100, |bytes| {
        match container::open(bytes) {
            Err(_typed) => {} // a typed ContainerError, by type
            Ok((id, opened)) => {
                // Digest addressing means a surviving open IS the sealed
                // program: same id, and re-sealing round-trips.
                assert_eq!(id, want_id, "surviving open changed the reference id");
                assert_eq!(container::seal(&opened), base);
            }
        }
    });
}

/// The registry control frames under the same contract: ~100 seeded
/// mutations of pinned-good `PutReference` (carrying a real sealed
/// container) and `ReferenceAck` frames (every status, including a
/// `Rejected` message and boundary ids) each fail with a typed
/// `ControlError` or decode self-consistently.
#[test]
fn reference_frames_survive_a_hundred_seeded_mutations() {
    use sanity_tdr::jbc::container;
    use sanity_tdr::{AckStatus, ReferenceId};
    let sanity = echo_sanity();
    let program = sanity.program();
    let id = container::reference_id(program);
    let frames = [
        ControlFrame::PutReference {
            put_id: 1,
            tdrp: container::seal(program),
        },
        ControlFrame::ReferenceAck {
            put_id: 1,
            reference: id,
            status: AckStatus::Loaded,
            resident_bytes: 989,
        },
        ControlFrame::ReferenceAck {
            put_id: u64::MAX,
            reference: ReferenceId([0xab; 32]),
            status: AckStatus::AlreadyResident,
            resident_bytes: u64::MAX,
        },
        ControlFrame::ReferenceAck {
            put_id: 2,
            reference: ReferenceId([0; 32]),
            status: AckStatus::Rejected("container CRC mismatch".to_string()),
            resident_bytes: 0,
        },
        ControlFrame::ReferenceAck {
            put_id: 3,
            reference: id,
            status: AckStatus::Unknown,
            resident_bytes: 2_716,
        },
        // A v2 SubmitBatch with an explicit reference id rides along so
        // the sweep also crosses the optional-trailer boundary.
        ControlFrame::SubmitBatch {
            batch_id: 9,
            tdrb: tdrb_corpus(),
            reference: Some(id),
        },
    ];
    let mut base = Vec::new();
    for frame in &frames {
        base.extend_from_slice(&frame.encode());
    }
    sweep("TDRC-reference", &base, 100, |bytes| {
        let mut src = bytes;
        loop {
            match ControlFrame::read_from(&mut src) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    let re = frame.encode();
                    let back = ControlFrame::read_from(&mut &re[..])
                        .expect("re-encoded frame decodes")
                        .expect("one frame");
                    assert_eq!(back, frame);
                }
                Err(_typed) => break,
            }
        }
    });
}

#[test]
fn tdrl_survives_a_thousand_seeded_mutations() {
    let base = tdrl_corpus();
    sweep("TDRL", &base, 350, |bytes| {
        for item in SessionStream::new(bytes) {
            match item {
                Ok(log) => {
                    // Self-consistency: the decoded log re-encodes and
                    // re-decodes identically.
                    let re = log.encode();
                    assert_eq!(EventLog::decode(&re).expect("re-decodes"), log);
                }
                Err(_typed) => break, // a typed StreamError
            }
        }
    });
}

#[test]
fn tdrb_survives_a_thousand_seeded_mutations() {
    let base = tdrb_corpus();
    sweep("TDRB", &base, 350, |bytes| {
        let stream = match BatchStream::new(bytes) {
            Ok(stream) => stream,
            Err(_typed) => return, // a typed IngestError
        };
        for item in stream {
            match item {
                Ok(_job) => {}
                Err(_typed) => break, // a typed IngestError
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Daemon-level torture: corrupted embedded batches are answered in-band
// ---------------------------------------------------------------------------

/// Mutated TDRB payloads inside *valid* `SubmitBatch` frames: every
/// submission is answered in-band (`Error`, or verdicts + `Summary` for
/// the rare mutation that leaves the batch decodable) and the daemon
/// keeps serving — the final good batch comes back bit-identical to the
/// in-process audit.
#[test]
fn daemon_answers_corrupted_batches_in_band_and_keeps_serving() {
    let sanity = echo_sanity();
    let jobs = echo_jobs(&sanity, 0..3);
    let good = ingest::encode_batch(&jobs);
    let cfg = AuditConfig {
        workers: 2,
        ..AuditConfig::default()
    };
    let expected = sanity.audit_batch(&jobs, &cfg);

    let service = sanity
        .audit_service()
        .workers(2)
        .build()
        .expect("valid service configuration");
    let (client_end, server_end) = duplex();
    let daemon = std::thread::spawn(move || {
        let outcome = service.serve(&server_end, &server_end);
        service.shutdown();
        outcome
    });

    let mut client = Client::new(&client_end);
    let mut in_band_errors = 0usize;
    let mut clean_decodes = 0usize;
    let mut rng = StdRng::seed_from_u64(0x7d5e_da11);
    const MUTATIONS: usize = 40;
    for m in 0..MUTATIONS as u64 {
        let bad = mutate(&mut rng, &good);
        // The *control* frame is valid; only the embedded TDRB is
        // corrupt. The exchange itself must therefore stay protocol-clean.
        let outcome = client
            .submit_batch(m, bad)
            .expect("corrupted batch content must never become a protocol error");
        match outcome.result {
            Err(_message) => in_band_errors += 1,
            Ok(summary) => {
                // The mutation left a decodable batch (e.g. a zero-length
                // duplication). Whatever decoded was audited for real.
                assert_eq!(summary.summary.sessions, outcome.verdicts.len() as u64);
                clean_decodes += 1;
            }
        }
    }
    assert!(
        in_band_errors > MUTATIONS / 2,
        "mutations should mostly corrupt the batch (got {in_band_errors} errors, \
         {clean_decodes} clean)"
    );

    // The daemon survived all of it: the next good batch is bit-identical
    // to the in-process audit.
    let outcome = client
        .submit_batch(999, good)
        .expect("daemon still speaks clean protocol");
    let summary = outcome.result.expect("good batch audits");
    assert_eq!(summary.summary, expected.summary);
    assert_eq!(outcome.verdicts.len(), expected.verdicts.len());
    for (wire, local) in outcome.verdicts.iter().zip(&expected.verdicts) {
        assert_eq!(wire, local);
        assert_eq!(wire.score.to_bits(), local.score.to_bits());
    }

    client.shutdown().expect("ack");
    drop(client_end);
    daemon
        .join()
        .expect("daemon thread")
        .expect("serve loop exits cleanly");
}
