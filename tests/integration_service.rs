//! Integration suite for the persistent `AuditService`: warm-service
//! reuse is byte-identical to fresh one-shot calls across worker counts
//! and battery modes, tickets cancel cleanly, shutdown drains in-flight
//! work, and the daemon loop over an in-memory duplex audits a TDRB
//! batch end to end through the TDRC control plane.

use std::io::Cursor;

use sanity_tdr::audit_pipeline::service::duplex;
use sanity_tdr::audit_pipeline::{ingest, FleetSummary};
use sanity_tdr::detectors::DetectorBattery;
use sanity_tdr::{AuditConfig, AuditJob, BatteryMode, ConfigError, ControlFrame, Sanity};
use vm::Vm;
use workloads::nfs;

#[path = "torture_common.rs"]
mod torture_common;

fn nfs_sanity(seed: u64) -> Sanity {
    Sanity::new(nfs::server_program(4)).with_files(nfs::make_files(4, 1500, 4000, seed))
}

fn deliver_nfs(vm: &mut Vm, seed: u64) {
    let files = nfs::make_files(4, 1500, 4000, seed);
    let sched = nfs::client_schedule(&files, 200_000, 700_000, seed ^ 1);
    for (at, pkt) in sched.packets.into_iter().take(4) {
        vm.machine_mut().deliver_packet(at, pkt);
    }
}

/// A small mixed fleet: mostly clean sessions, one with a covert delay.
fn fleet(sanity: &Sanity, ids: std::ops::Range<u64>, covert: u64) -> Vec<AuditJob> {
    ids.map(|id| {
        let rec = sanity
            .record(100 + id, |vm| {
                deliver_nfs(vm, 14);
                if id == covert {
                    vm.set_delay_model(Box::new(vm::ScheduledDelays::new(vec![
                        0, 150_000, 0, 150_000,
                    ])));
                }
            })
            .expect("record");
        AuditJob {
            session_id: id,
            observed_ipds: rec.tx_ipds_cycles(),
            log: rec.log,
        }
    })
    .collect()
}

fn trained_on_clean(jobs: &[AuditJob], covert: u64) -> DetectorBattery {
    let clean: Vec<Vec<u64>> = jobs
        .iter()
        .filter(|j| j.session_id != covert)
        .map(|j| j.observed_ipds.clone())
        .collect();
    DetectorBattery::trained(&clean)
}

#[test]
fn warm_service_reuse_is_byte_identical_to_one_shot() {
    let sanity = nfs_sanity(14);
    let batch_a = fleet(&sanity, 0..4, 2);
    let batch_b = fleet(&sanity, 4..8, 6);
    let battery = trained_on_clean(&batch_a, 2);
    let with_battery = sanity.clone().with_battery(battery);

    for workers in [1usize, 4] {
        for mode in [BatteryMode::TdrOnly, BatteryMode::Full] {
            let system = match mode {
                BatteryMode::TdrOnly => &sanity,
                BatteryMode::Full => &with_battery,
            };
            let cfg = AuditConfig {
                workers,
                battery: mode,
                ..AuditConfig::default()
            };

            // Two batches through one warm service...
            let service = system
                .audit_service()
                .workers(workers)
                .battery(mode)
                .build()
                .expect("valid service configuration");
            let warm_a = service.submit_batch(&batch_a).wait().expect("audits");
            let warm_b = service.submit_batch(&batch_b).wait().expect("audits");
            service.shutdown();

            // ...must equal two fresh one-shot calls, byte for byte.
            let cold_a = system.audit_batch(&batch_a, &cfg);
            let cold_b = system.audit_batch(&batch_b, &cfg);
            assert_eq!(
                warm_a, cold_a,
                "{workers} workers, {mode:?}: first batch diverged"
            );
            assert_eq!(
                warm_b, cold_b,
                "{workers} workers, {mode:?}: second batch diverged"
            );
            for (w, c) in warm_a.verdicts.iter().zip(&cold_a.verdicts) {
                assert_eq!(w.score.to_bits(), c.score.to_bits());
                for (name, score) in &w.detector_scores {
                    assert_eq!(score.to_bits(), c.detector_scores[name].to_bits());
                }
            }
        }
    }
}

#[test]
fn warm_stream_submission_matches_one_shot_audit_stream() {
    let sanity = nfs_sanity(14);
    let jobs = fleet(&sanity, 0..4, 2);
    let bytes = ingest::encode_batch(&jobs);
    let cfg = AuditConfig {
        workers: 2,
        high_water: 2,
        ..AuditConfig::default()
    };
    let one_shot = sanity.audit_stream(&bytes[..], &cfg).expect("audits");

    let service = sanity
        .audit_service()
        .workers(2)
        .high_water(2)
        .build()
        .expect("valid service configuration");
    let warm_1 = service
        .submit_stream(Cursor::new(bytes.clone()))
        .expect("header decodes")
        .wait_stream()
        .expect("audits");
    let warm_2 = service
        .submit_stream(Cursor::new(bytes))
        .expect("header decodes")
        .wait_stream()
        .expect("audits");
    service.shutdown();

    assert_eq!(warm_1, one_shot, "warm streamed == one-shot streamed");
    assert_eq!(warm_2, one_shot, "resubmission is reproducible");
    assert!(warm_1.peak_resident <= 2);
}

#[test]
fn ticket_drop_cancels_and_shutdown_drains_inflight() {
    let sanity = nfs_sanity(14);
    let jobs = fleet(&sanity, 0..6, 2);
    let service = sanity
        .audit_service()
        .workers(1)
        .build()
        .expect("valid service configuration");

    // Cancel: drop the ticket with everything still queued on one worker.
    drop(service.submit_batch(&jobs));

    // The service survives and audits the next submission in full.
    let ticket = service.submit_batch(&jobs[..2]);

    // Shutdown with that ticket in flight: the queue drains first.
    let baseline = sanity.audit_batch(
        &jobs[..2],
        &AuditConfig {
            workers: 1,
            ..AuditConfig::default()
        },
    );
    service.shutdown();
    let report = ticket.wait().expect("inflight ticket drains");
    assert_eq!(report.verdicts.len(), 2);
    assert_eq!(report.summary, baseline.summary);
}

#[test]
fn service_builder_rejects_invalid_configs_with_typed_errors() {
    let sanity = nfs_sanity(14);
    assert_eq!(
        sanity.audit_service().workers(0).build().err(),
        Some(ConfigError::ZeroWorkers)
    );
    assert_eq!(
        sanity.audit_service().high_water(0).build().err(),
        Some(ConfigError::ZeroHighWater)
    );
    assert_eq!(
        sanity
            .audit_service()
            .battery(BatteryMode::Full)
            .build()
            .err(),
        Some(ConfigError::MissingBattery)
    );
}

/// The end-to-end daemon path: a TDRB batch submitted as a
/// `ControlFrame::SubmitBatch` over an in-memory duplex comes back as
/// in-order verdict frames plus a summary byte-identical to the
/// in-process audit of the same bytes.
#[test]
fn daemon_over_duplex_audits_a_tdrb_batch_end_to_end() {
    let sanity = nfs_sanity(14);
    let jobs = fleet(&sanity, 0..4, 2);
    let bytes = ingest::encode_batch(&jobs);
    let expected = sanity.audit_batch(
        &jobs,
        &AuditConfig {
            workers: 2,
            ..AuditConfig::default()
        },
    );

    let service = sanity
        .audit_service()
        .workers(2)
        .build()
        .expect("valid service configuration");
    let (mut client, server) = duplex();
    let daemon = std::thread::spawn(move || {
        let outcome = service.serve(&server, &server);
        service.shutdown();
        outcome
    });

    ControlFrame::SubmitBatch {
        batch_id: 77,
        tdrb: bytes,
        reference: None,
    }
    .write_to(&mut client)
    .expect("submit");

    let mut verdicts = Vec::new();
    let summary: FleetSummary = loop {
        match ControlFrame::read_from(&mut client)
            .expect("response decodes")
            .expect("daemon is up")
        {
            ControlFrame::Verdict {
                batch_id,
                index,
                verdict,
            } => {
                assert_eq!(batch_id, 77);
                assert_eq!(index as usize, verdicts.len(), "verdicts in order");
                verdicts.push(verdict);
            }
            ControlFrame::Summary {
                batch_id, summary, ..
            } => {
                assert_eq!(batch_id, 77);
                break summary;
            }
            other => panic!("unexpected daemon frame: {other:?}"),
        }
    };

    // The control plane carries verdicts bit-exactly.
    assert_eq!(verdicts.len(), expected.verdicts.len());
    for (wire, local) in verdicts.iter().zip(&expected.verdicts) {
        assert_eq!(wire, local);
        assert_eq!(wire.score.to_bits(), local.score.to_bits());
    }
    assert_eq!(summary, expected.summary);

    ControlFrame::Shutdown.write_to(&mut client).expect("bye");
    assert_eq!(
        ControlFrame::read_from(&mut client)
            .expect("ack decodes")
            .expect("daemon acks"),
        ControlFrame::ShutdownAck
    );
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon loop exits cleanly");
}

/// `RETRAIN_CAPTURE_CAP` boundary: a streamed batch of exactly
/// `CAP` clean sessions absorbs all of them; one more session (`CAP + 1`)
/// absorbs only the capped prefix — bounded-memory ingest must never let
/// the retraining capture grow with the batch. In both cases the
/// published battery generation is bit-identical (JSON form) to an
/// explicit `absorb_all` of the captured prefix.
#[test]
fn retrain_capture_cap_boundary_256_vs_257() {
    use sanity_tdr::audit_pipeline::service::RETRAIN_CAPTURE_CAP;
    use sanity_tdr::detectors::{CceTest, RegularityTest};
    use sanity_tdr::Detector as _;

    // The shared cheap echo reference (10 request/response rounds → 9
    // IPDs per session) so streaming CAP+1 sessions stays fast; the
    // windowed detectors get short-trace windows like the examples use.
    let sanity = torture_common::echo_sanity_with(10);

    // One recorded session, cloned into a large all-clean fleet: distinct
    // ids and sub-noise observed perturbations (a few cycles against
    // ~10^5-cycle IPDs) keep every captured trace distinct without
    // flagging anything.
    let rec = sanity
        .record(42, |vm| {
            for k in 0..10u64 {
                vm.machine_mut()
                    .deliver_packet(100_000 + k * 400_000, vec![7 + k as u8; 48]);
            }
        })
        .expect("record echo session");
    let base_ipds = rec.tx_ipds_cycles();
    let make_jobs = |n: usize| -> Vec<AuditJob> {
        (0..n as u64)
            .map(|id| {
                let mut observed = base_ipds.clone();
                for (k, ipd) in observed.iter_mut().enumerate() {
                    *ipd += (id + k as u64) % 3;
                }
                AuditJob {
                    session_id: id,
                    observed_ipds: observed,
                    log: rec.log.clone(),
                }
            })
            .collect()
    };

    let mut base_battery = DetectorBattery::new();
    base_battery.rt = RegularityTest::new(3);
    base_battery.cce = CceTest::new(5, 3);
    base_battery.train(&[base_ipds.clone(), base_ipds.clone()]);

    for n in [RETRAIN_CAPTURE_CAP, RETRAIN_CAPTURE_CAP + 1] {
        let jobs = make_jobs(n);
        let bytes = ingest::encode_batch(&jobs);
        // The fleet reuses one recorded log across per-session replay
        // seeds, so cross-seed noise on this short fixture can top the 2%
        // default threshold; the test is about the retraining capture,
        // so set the flagging bar where the whole fleet counts as clean.
        let service = sanity
            .clone()
            .with_battery(base_battery.clone())
            .audit_service()
            .workers(4)
            .high_water(8)
            .threshold(0.5)
            .retrain_on_clean(true)
            .build()
            .expect("valid service configuration");
        let report = service
            .submit_stream(Cursor::new(bytes))
            .expect("header decodes")
            .wait_stream()
            .expect("stream audits");
        assert_eq!(report.summary.sessions, n as u64);
        assert!(
            report.summary.flagged.is_empty(),
            "fixture fleet is clean (n = {n}): {:?}",
            report.summary.flagged
        );
        assert!(report.peak_resident <= 8, "bounded ingest held");

        // Capture stays capped at the boundary...
        let published = service.battery().expect("battery attached");
        let captured = n.min(RETRAIN_CAPTURE_CAP);
        assert_eq!(
            published.training_traces(),
            base_battery.training_traces() + captured,
            "n = {n}: exactly the capped prefix is absorbed"
        );

        // ...and the published generation is bit-identical to an explicit
        // absorb of that prefix.
        let mut explicit = base_battery.clone();
        let prefix: Vec<Vec<u64>> = jobs[..captured]
            .iter()
            .map(|j| j.observed_ipds.clone())
            .collect();
        explicit.absorb_all(&prefix);
        assert_eq!(
            published.to_json(),
            explicit.to_json(),
            "n = {n}: published generation == explicit absorb_all of the captured prefix"
        );
        service.shutdown();
    }
}

/// Cross-batch retraining: with the knob on, the service absorbs each
/// batch's clean traces, and the next batch is scored by the retrained
/// generation (observable as a changed statistical baseline).
#[test]
fn retrain_on_clean_feeds_the_next_batch() {
    let sanity = nfs_sanity(14);
    let batch_a = fleet(&sanity, 0..4, 2);
    let batch_b = fleet(&sanity, 4..8, 6);
    let battery = trained_on_clean(&batch_a, 2);
    let system = sanity.clone().with_battery(battery.clone());

    let service = system
        .audit_service()
        .workers(2)
        .battery(BatteryMode::Full)
        .retrain_on_clean(true)
        .build()
        .expect("valid service configuration");
    let report_a = service.submit_batch(&batch_a).wait().expect("audits");
    let clean_a = report_a.verdicts.iter().filter(|v| !v.flagged).count();
    assert!(clean_a > 0);
    let retrained = service.battery().expect("battery attached");
    assert_eq!(
        retrained.training_traces(),
        battery.training_traces() + clean_a,
        "clean traces of batch A were absorbed"
    );
    let report_b = service.submit_batch(&batch_b).wait().expect("audits");
    service.shutdown();

    // TDR scores never depend on the battery generation...
    let plain_b = sanity.audit_batch(
        &batch_b,
        &AuditConfig {
            workers: 2,
            ..AuditConfig::default()
        },
    );
    for (full, tdr) in report_b.verdicts.iter().zip(&plain_b.verdicts) {
        assert_eq!(full.score.to_bits(), tdr.score.to_bits());
    }
    // ...and batch B's statistical scores come from the retrained
    // generation, pinned by scoring against it directly.
    let first = &report_b.verdicts[0];
    let expected_scores =
        retrained.score_all(&sanity_tdr::TraceView::observed(&batch_b[0].observed_ipds));
    for name in ["Shape test", "KS test", "RT test", "CCE test"] {
        assert_eq!(
            first.detector_scores[name].to_bits(),
            expected_scores[name].to_bits(),
            "{name}: batch B must be scored by the retrained battery"
        );
    }
}
