//! Cross-crate integration: covert channels vs the TDR auditor (§5.3, §6.6).

use channels::{message_bits, Needle, TimingChannel, Trctc};
use sanity_tdr::{compare, Sanity, TimingAuditor};
use vm::TargetSendTimes;
use workloads::nfs;

struct Setup {
    sanity: Sanity,
    packets: Vec<(u64, Vec<u8>)>,
}

fn setup(seed: u64) -> Setup {
    let files = nfs::make_files(6, 2048, 6144, seed);
    let sched = nfs::client_schedule(&files, 200_000, 740_000, seed ^ 0x5a5a);
    Setup {
        sanity: Sanity::new(nfs::server_program(sched.len() as i32)).with_files(files),
        packets: sched.packets,
    }
}

fn record_clean(s: &Setup, run: u64) -> replay::Recorded {
    let packets = s.packets.clone();
    s.sanity
        .record(run, move |vm| {
            for (at, pkt) in packets {
                vm.machine_mut().deliver_packet(at, pkt);
            }
        })
        .expect("record")
}

fn record_with_targets(s: &Setup, run: u64, targets: Vec<u64>) -> replay::Recorded {
    let packets = s.packets.clone();
    s.sanity
        .record(run, move |vm| {
            for (at, pkt) in packets {
                vm.machine_mut().deliver_packet(at, pkt);
            }
            vm.set_delay_model(Box::new(TargetSendTimes::new(targets)));
        })
        .expect("record")
}

fn targets_for_covert(base_sends: &[u64], covert_ipds: &[u64]) -> Vec<u64> {
    let mut cov_abs = vec![0u64];
    let mut t = 0u64;
    for &d in covert_ipds.iter().take(base_sends.len() - 1) {
        t += d;
        cov_abs.push(t);
    }
    let offset = base_sends
        .iter()
        .zip(&cov_abs)
        .map(|(&b, &c)| b.saturating_sub(c))
        .max()
        .unwrap_or(0)
        + 150_000;
    cov_abs.iter().map(|&c| c + offset).collect()
}

#[test]
fn auditor_passes_clean_trace_and_flags_trctc() {
    let s = setup(10);
    let clean = record_clean(&s, 1);
    let clean_ipds = compare::tx_ipds_cycles(&clean.tx);
    let auditor = TimingAuditor::new(s.sanity.clone());

    // Clean trace: the score sits at the noise floor.
    let clean_report = auditor.audit(&clean.log, &clean_ipds, 42).expect("audit");
    assert!(
        !clean_report.flagged,
        "clean score {} under threshold",
        clean_report.score
    );

    // TRCTC-compromised trace: flagged decisively.
    let base_sends: Vec<u64> = clean.tx.iter().map(|t| t.cycle).collect();
    let legit: Vec<u64> = clean_ipds.clone();
    let mut ch = Trctc::new(7);
    let covert = ch.encode(&message_bits(clean_ipds.len(), 3), &legit);
    let targets = targets_for_covert(&base_sends, &covert);
    let covert_rec = record_with_targets(&s, 1, targets);
    let covert_ipds = compare::tx_ipds_cycles(&covert_rec.tx);
    let report = auditor
        .audit(&covert_rec.log, &covert_ipds, 43)
        .expect("audit");
    assert!(
        report.flagged,
        "TRCTC score {} over threshold",
        report.score
    );
    assert!(report.score > 5.0 * clean_report.score.max(1e-6));
}

#[test]
fn auditor_catches_single_packet_needle() {
    // §6.8: a single delayed packet out of a hundred is invisible to the
    // statistics but not to TDR.
    let s = setup(11);
    let clean = record_clean(&s, 2);
    let clean_ipds = compare::tx_ipds_cycles(&clean.tx);
    let base_sends: Vec<u64> = clean.tx.iter().map(|t| t.cycle).collect();

    let mut needle = Needle::new(clean_ipds.len(), 0.40); // One bit total.
    let covert = needle.encode(&[true], &clean_ipds);
    let targets = targets_for_covert(&base_sends, &covert[..clean_ipds.len()]);
    let covert_rec = record_with_targets(&s, 2, targets);
    let covert_ipds = compare::tx_ipds_cycles(&covert_rec.tx);

    let auditor = TimingAuditor::new(s.sanity.clone());
    let report = auditor
        .audit(&covert_rec.log, &covert_ipds, 44)
        .expect("audit");
    assert!(
        report.flagged,
        "one stretched packet is enough: score {}",
        report.score
    );
}

#[test]
fn statistical_detectors_see_nothing_on_needle() {
    use detectors::{Detector, KsTest, ShapeTest, TraceView};
    let s = setup(12);
    let clean = record_clean(&s, 3);
    let clean_ipds = compare::tx_ipds_cycles(&clean.tx);

    // Train on a handful of other clean traces.
    let train: Vec<Vec<u64>> = (20..26u64)
        .map(|k| {
            let s2 = setup(k);
            compare::tx_ipds_cycles(&record_clean(&s2, k).tx)
        })
        .collect();
    let mut shape = ShapeTest::new();
    shape.train(&train);
    let mut ks = KsTest::new();
    ks.train(&train);

    // The needle trace differs from its clean base in one packet.
    let base_sends: Vec<u64> = clean.tx.iter().map(|t| t.cycle).collect();
    let mut needle = Needle::new(clean_ipds.len(), 0.40);
    let covert = needle.encode(&[true], &clean_ipds);
    let targets = targets_for_covert(&base_sends, &covert[..clean_ipds.len()]);
    let covert_rec = record_with_targets(&s, 3, targets);
    let covert_ipds = compare::tx_ipds_cycles(&covert_rec.tx);

    // The needle's statistical footprint is within the legitimate spread.
    let max_clean_shape = train
        .iter()
        .map(|t| shape.score(&TraceView::observed(t)))
        .fold(0.0, f64::max);
    assert!(
        shape.score(&TraceView::observed(&covert_ipds)) < 2.0 * max_clean_shape,
        "shape can't separate the needle"
    );
    let max_clean_ks = train
        .iter()
        .map(|t| ks.score(&TraceView::observed(t)))
        .fold(0.0, f64::max);
    assert!(
        ks.score(&TraceView::observed(&covert_ipds)) < 2.0 * max_clean_ks,
        "KS can't separate the needle"
    );
}
