//! Cross-crate integration: the batch-audit pipeline and the binary log
//! codec over real recorded NFS workloads.

use sanity_tdr::audit_pipeline::ingest;
use sanity_tdr::{compare, AuditConfig, AuditJob, Sanity};
use workloads::nfs;

/// One NFS service and a fleet of its recorded sessions; sessions whose id
/// is in `covert` get two packets delayed by ~20% of the IPD.
fn record_fleet(n: u64, covert: &[u64]) -> (Sanity, Vec<AuditJob>) {
    let files = nfs::make_files(6, 2048, 6144, 31);
    let sanity = Sanity::new(nfs::server_program(files.len() as i32)).with_files(files.clone());
    let jobs = (0..n)
        .map(|id| {
            let sched = nfs::client_schedule(&files, 200_000, 740_000, 500 + id);
            let is_covert = covert.contains(&id);
            let rec = sanity
                .record(id, |vm| {
                    for (at, pkt) in sched.packets {
                        vm.machine_mut().deliver_packet(at, pkt);
                    }
                    if is_covert {
                        vm.set_delay_model(Box::new(vm::ScheduledDelays::new(vec![
                            0, 150_000, 0, 0, 150_000, 0,
                        ])));
                    }
                })
                .expect("record");
            AuditJob {
                session_id: id,
                observed_ipds: compare::tx_ipds_cycles(&rec.tx),
                log: rec.log,
            }
        })
        .collect();
    (sanity, jobs)
}

#[test]
fn batch_audit_is_deterministic_across_worker_counts_and_order() {
    let (sanity, mut jobs) = record_fleet(6, &[2, 5]);
    let cfg1 = AuditConfig {
        workers: 1,
        ..AuditConfig::default()
    };
    let cfg3 = AuditConfig {
        workers: 3,
        ..AuditConfig::default()
    };

    let one = sanity.audit_batch(&jobs, &cfg1);
    let three = sanity.audit_batch(&jobs, &cfg3);
    assert_eq!(one.verdicts, three.verdicts, "worker count must not matter");
    assert_eq!(one.summary, three.summary);
    assert_eq!(one.summary.flagged, vec![2, 5]);
    assert_eq!(one.summary.errors, 0);

    // Shard order must not matter either: reverse the batch.
    jobs.reverse();
    let reversed = sanity.audit_batch(&jobs, &cfg3);
    let mut by_id = reversed.verdicts.clone();
    by_id.sort_by_key(|v| v.session_id);
    assert_eq!(by_id, one.verdicts);
    assert_eq!(reversed.summary, one.summary);
}

#[test]
fn codec_roundtrips_recorded_nfs_log_byte_for_byte() {
    let (_, jobs) = record_fleet(1, &[]);
    let log = &jobs[0].log;
    assert!(
        !log.packets.is_empty() && !log.values.is_empty(),
        "a real NFS log has packets and values"
    );

    let encoded = log.encode();
    let decoded = replay::EventLog::decode(&encoded).expect("decodes");
    assert_eq!(&decoded, log, "decode(encode(log)) == log");
    assert_eq!(
        decoded.encode(),
        encoded,
        "re-encoding is byte-for-byte stable"
    );
    assert_eq!(
        decoded.to_json(),
        log.to_json(),
        "binary codec agrees with the serde representation"
    );
    assert!(
        encoded.len() < log.to_json().len() / 2,
        "binary ({}) is well under half of JSON ({})",
        encoded.len(),
        log.to_json().len()
    );
}

#[test]
fn fleet_survives_the_batch_wire_format() {
    let (sanity, jobs) = record_fleet(4, &[1]);
    let bytes = ingest::encode_batch(&jobs);
    let back = ingest::decode_batch(&bytes).expect("batch decodes");
    assert_eq!(back, jobs);

    // Auditing the re-ingested batch produces the same verdicts.
    let cfg = AuditConfig {
        workers: 2,
        ..AuditConfig::default()
    };
    assert_eq!(
        sanity.audit_batch(&back, &cfg).verdicts,
        sanity.audit_batch(&jobs, &cfg).verdicts
    );
}
