//! Minimal, vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses: non-generic structs (named, tuple,
//! unit) and non-generic enums (unit, tuple, and struct variants). The
//! token stream is parsed by hand — no `syn`/`quote`, since the build
//! environment cannot reach crates.io.
//!
//! The generated code targets the simplified `serde::Content` data model of
//! the vendored `serde` crate and follows serde's externally-tagged enum
//! convention.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum ItemKind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Skip outer attributes (`#[...]`, incl. doc comments) and a visibility
/// qualifier (`pub`, `pub(crate)`, ...), returning the new cursor.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Advance past one field's type: everything up to the next comma that is
/// not nested inside `<...>` generic arguments.
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while let Some(t) = toks.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // name
        i += 1; // ':'
        i = skip_type(&toks, i);
        i += 1; // ','
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        n += 1;
        i = skip_type(&toks, i);
        i += 1; // ','
    }
    n
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Shape)> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(f)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while let Some(t) = toks.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1; // ','
        variants.push((name, shape));
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generics (type {name})"
        ));
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            _ => ItemKind::Struct(Shape::Unit),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, kind })
}

fn tuple_bindings(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("f{k}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Shape::Unit) => "::serde::Content::Null".to_string(),
        ItemKind::Struct(Shape::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        ItemKind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f}))")
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", items.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::Content::Str(String::from(\"{v}\"))"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Content::Map(vec![(String::from(\"{v}\"), \
                         ::serde::Serialize::serialize(f0))])"
                    ),
                    Shape::Tuple(n) => {
                        let binds = tuple_bindings(*n);
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Content::Map(vec![(String::from(\"{v}\"), \
                             ::serde::Content::Seq(vec![{}]))])",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Content::Map(vec![(String::from(\"{v}\"), \
                             ::serde::Content::Map(vec![{}]))])",
                            fields.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Shape::Unit) => format!("Ok({name})"),
        ItemKind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(c)?))")
        }
        ItemKind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize(&s[{k}])?"))
                .collect();
            format!(
                "let s = c.as_seq().ok_or_else(|| ::serde::Error::msg(\"expected seq for {name}\"))?;\n\
                 if s.len() != {n} {{ return Err(::serde::Error::msg(\"wrong arity for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        ItemKind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(m, \"{f}\")?"))
                .collect();
            format!(
                "let m = c.as_map().ok_or_else(|| ::serde::Error::msg(\"expected map for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    Shape::Unit => None,
                    Shape::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize(v)?))"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize(&s[{k}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                             let s = v.as_seq().ok_or_else(|| ::serde::Error::msg(\"expected seq for {name}::{v}\"))?;\n\
                             if s.len() != {n} {{ return Err(::serde::Error::msg(\"wrong arity for {name}::{v}\")); }}\n\
                             Ok({name}::{v}({}))\n\
                             }}",
                            items.join(", ")
                        ))
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(m, \"{f}\")?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                             let m = v.as_map().ok_or_else(|| ::serde::Error::msg(\"expected map for {name}::{v}\"))?;\n\
                             Ok({name}::{v} {{ {} }})\n\
                             }}",
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 _ => Err(::serde::Error::msg(format!(\"unknown {name} variant {{s}}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                 let (k, v) = &m[0];\n\
                 let _ = v;\n\
                 match k.as_str() {{\n\
                 {}\n\
                 _ => Err(::serde::Error::msg(format!(\"unknown {name} variant {{k}}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::Error::msg(\"expected enum representation for {name}\")),\n\
                 }}",
                if unit_arms.is_empty() {
                    String::new()
                } else {
                    unit_arms.join(",\n") + ","
                },
                if data_arms.is_empty() {
                    String::new()
                } else {
                    data_arms.join(",\n") + ","
                }
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("vendored serde_derive generated invalid Rust"),
        Err(e) => format!("compile_error!({e:?});").parse().unwrap(),
    }
}

/// Derive `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
