//! Minimal, vendored stand-in for `criterion`.
//!
//! Provides the tiny API surface the workspace's benches use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock timer instead
//! of criterion's statistical machinery. Results print as
//! `name: mean ± spread per iter over N samples`.

use std::time::Instant;

/// Benchmark driver (stub: only carries defaults into groups).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time `f`'s `Bencher::iter` body and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let full = if self.name.is_empty() {
            id
        } else {
            format!("{}/{id}", self.name)
        };
        let mut b = Bencher {
            samples_wanted: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let n = b.samples_ns.len().max(1) as f64;
        let mean = b.samples_ns.iter().sum::<f64>() / n;
        let var = b
            .samples_ns
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        println!(
            "bench {full}: {:>12.0} ns/iter (± {:.0}) over {} samples",
            mean,
            var.sqrt(),
            b.samples_ns.len()
        );
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Runs and times the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples_wanted: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Run `body` once for warm-up, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body()); // warm-up
        for _ in 0..self.samples_wanted {
            let t0 = Instant::now();
            black_box(body());
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting the benchmark.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner (stub: a plain fn).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
