//! Minimal, vendored stand-in for the `rand` crate (0.8-style API surface).
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset the workspace uses: `rngs::StdRng` (a deterministic xoshiro256**
//! seeded via SplitMix64), `SeedableRng::seed_from_u64`, the `Rng` methods
//! `gen_range` / `gen_bool` / `gen`, and `seq::SliceRandom::shuffle`.
//!
//! The stream differs from upstream `StdRng` (ChaCha12); everything in this
//! workspace treats the RNG as an arbitrary deterministic noise source, so
//! only determinism-given-seed and statistical quality matter.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }

    /// Sample a value of `T` from its full / standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full RNG state from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample of `T`.
///
/// Implemented as single blanket impls over [`SampleUniform`] so that
/// unsuffixed literals (`-0.08..=0.08`) still fall back to `f64`/`i32`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types that can be uniformly sampled from a bounded interval.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                lo + (next_f64(rng) as $t) * (hi - lo)
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                lo + (next_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Types samplable from the "standard" distribution (full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        next_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        next_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's ChaCha12
    /// `StdRng`; see the crate docs for why the stream difference is fine).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the only `SliceRandom` method the workspace uses).
    pub trait SliceRandom {
        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-0.08..=0.08);
            assert!((-0.08..=0.08).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "{buckets:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle changed the order");
    }
}
