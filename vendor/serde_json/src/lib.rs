//! Minimal, vendored stand-in for `serde_json`.
//!
//! Renders the vendored `serde::Content` tree to JSON text and parses it
//! back. Supports the full JSON grammar this workspace emits: objects,
//! arrays, strings (with escapes), numbers (kept as literal text so `u128`
//! and shortest-roundtrip floats survive), booleans, and null.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    Ok(T::deserialize(&content)?)
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Num(raw) => out.push_str(raw),
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            out.push('{');
            for (k, (key, value)) in pairs.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_content(value, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; reject them.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| Error::msg("bad \\u code point"))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if raw.is_empty() || raw == "-" {
            return Err(Error::msg(format!("bad number at byte {start}")));
        }
        Ok(Content::Num(raw.to_string()))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.25e3").unwrap(), 1250.0);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>(" -7 ").unwrap(), -7);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\té漢".to_string();
        let j = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
    }

    #[test]
    fn nested_roundtrip() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![255]];
        let j = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u8>>>(&j).unwrap(), v);
    }

    #[test]
    fn u128_survives() {
        let x = u128::MAX;
        assert_eq!(from_str::<u128>(&to_string(&x).unwrap()).unwrap(), x);
    }
}
