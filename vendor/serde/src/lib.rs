//! Minimal, vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of serde it actually uses: the `Serialize` /
//! `Deserialize` traits, derive macros for plain structs and enums, and a
//! self-describing [`Content`] tree that `serde_json` renders to and from
//! JSON text. The enum encoding follows serde's externally-tagged JSON
//! convention (`"Variant"`, `{"Variant": ...}`) so logs written by the real
//! serde would parse identically.
//!
//! Unsupported (because the workspace never needs them): generics on
//! derived types, `#[serde(...)]` attributes, borrowed deserialization,
//! and non-string map keys.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stub's entire data model).
///
/// Numbers keep their literal text so that `u128` and shortest-roundtrip
/// floats survive without a lossy common representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// A JSON number, kept as its literal text.
    Num(String),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Seq(Vec<Content>),
    /// A JSON object, as ordered key/value pairs.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The pairs if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error (the only fallible direction in this stub).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Construct from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves to a [`Content`] tree.
pub trait Serialize {
    /// Serialize into the content tree.
    fn serialize(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the content tree.
    fn deserialize(c: &Content) -> Result<Self, Error>;
}

/// Look up `key` in a map body and deserialize it (derive-macro helper).
pub fn de_field<T: Deserialize>(m: &[(String, Content)], key: &str) -> Result<T, Error> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v),
        None => Err(Error::msg(format!("missing field `{key}`"))),
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::Num(raw) => raw.parse::<$t>().map_err(|e| {
                        Error::msg(format!("bad {}: {raw}: {e}", stringify!($t)))
                    }),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        T::deserialize(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(s) => s.iter().map(T::deserialize).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($n:literal => $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(c: &Content) -> Result<Self, Error> {
                let s = c.as_seq().ok_or_else(|| Error::msg("expected tuple"))?;
                if s.len() != $n {
                    return Err(Error::msg(concat!("expected ", $n, "-element sequence")));
                }
                Ok(($($name::deserialize(&s[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(2 => A: 0, B: 1);
impl_tuple!(3 => A: 0, B: 1, C: 2);
impl_tuple!(4 => A: 0, B: 1, C: 2, D: 3);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        // Sort for a stable byte representation (HashMap order is random).
        let mut pairs: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(c: &Content) -> Result<Self, Error> {
        let m = c.as_map().ok_or_else(|| Error::msg("expected map"))?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(u128::deserialize(&(u128::MAX).serialize()), Ok(u128::MAX));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            Option::<u32>::deserialize(&None::<u32>.serialize()),
            Ok(None)
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()), Ok(v));
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u8);
        assert_eq!(HashMap::<String, u8>::deserialize(&m.serialize()), Ok(m));
    }
}
